//! Measurement collection.
//!
//! The paper's evaluation reports queue-delay time series (1 s and 100 ms
//! sampling), per-packet queue-delay CDFs and percentiles, per-flow and
//! total throughput, applied mark/drop probability percentiles, and link
//! utilization. The [`Monitor`] collects all of these during a run with a
//! configurable sampling interval and warm-up exclusion.

use crate::aqm::{Action, Decision};
use crate::packet::FlowId;
use crate::queue::Qdisc;
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Time};

/// Monitor configuration.
#[derive(Clone, Copy, Debug)]
pub struct MonitorConfig {
    /// Spacing of time-series samples (the paper uses 1 s in most figures
    /// and 100 ms for the Figure 12 peak-delay comparison).
    pub sample_interval: Duration,
    /// Samples and per-packet records before this instant are excluded
    /// from aggregate statistics (they still appear in time series).
    pub warmup: Duration,
    /// Record per-packet sojourn times (needed for delay CDFs/percentiles).
    pub record_sojourns: bool,
    /// Record the per-packet applied probability (needed for Figure 17).
    pub record_probs: bool,
    /// Additionally record sojourns per flow (needed for per-class delay
    /// distributions, e.g. the DualQ L-vs-C comparison).
    pub record_flow_sojourns: bool,
    /// Record the per-flow throughput column store at each sample tick
    /// (needed for per-flow/pooled rate series; engine microbenches turn
    /// it off along with the other recording flags).
    pub record_flow_tput: bool,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            sample_interval: Duration::from_secs(1),
            warmup: Duration::ZERO,
            record_sojourns: true,
            record_probs: true,
            record_flow_sojourns: false,
            record_flow_tput: true,
        }
    }
}

/// Per-flow accounting.
#[derive(Clone, Debug)]
pub struct FlowAccount {
    /// Label given at registration; experiments group flows by it
    /// (e.g. `"cubic"`, `"dctcp"`, `"udp"`).
    pub label: String,
    /// Packets handed to the bottleneck by the sender.
    pub sent_pkts: u64,
    /// Bytes handed to the bottleneck by the sender.
    pub sent_bytes: u64,
    /// Packets handed to the bottleneck after the warm-up period.
    pub sent_pkts_postwarm: u64,
    /// Packets dropped by the AQM or buffer.
    pub dropped: u64,
    /// Packets CE-marked by the AQM.
    pub marked: u64,
    /// Packets dropped after the warm-up period.
    pub dropped_postwarm: u64,
    /// Packets CE-marked after the warm-up period.
    pub marked_postwarm: u64,
    /// Packets that left the bottleneck link.
    pub dequeued_pkts: u64,
    /// Bytes that left the bottleneck link.
    pub dequeued_bytes: u64,
    /// Bytes that left the bottleneck link after the warm-up period.
    pub dequeued_bytes_postwarm: u64,
    /// Packets that reached the receiver.
    pub delivered_pkts: u64,
    /// Bytes that reached the receiver.
    pub delivered_bytes: u64,
    /// Bytes that reached the receiver after the warm-up period.
    pub delivered_bytes_postwarm: u64,
    /// Applied probability per offered packet, after warm-up
    /// (only if [`MonitorConfig::record_probs`]).
    pub prob_samples: Vec<f32>,
    /// Per-packet sojourn samples for this flow, post warm-up (only if
    /// [`MonitorConfig::record_flow_sojourns`]).
    pub sojourn_ms: Vec<f32>,
}

impl FlowAccount {
    fn new(label: &str) -> Self {
        FlowAccount {
            label: label.to_string(),
            sent_pkts: 0,
            sent_bytes: 0,
            sent_pkts_postwarm: 0,
            dropped: 0,
            marked: 0,
            dropped_postwarm: 0,
            marked_postwarm: 0,
            dequeued_pkts: 0,
            dequeued_bytes: 0,
            dequeued_bytes_postwarm: 0,
            delivered_pkts: 0,
            delivered_bytes: 0,
            delivered_bytes_postwarm: 0,
            prob_samples: Vec::new(),
            sojourn_ms: Vec::new(),
        }
    }

    /// Fraction of offered packets that were marked or dropped — the
    /// empirical congestion-signal probability of this flow. Measured over
    /// the post-warm-up window, the same window as
    /// [`FlowAccount::mean_tput_mbps`] (slow-start transients would
    /// otherwise skew the numerator while the denominator of a throughput
    /// comparison excludes them).
    pub fn signal_fraction(&self) -> f64 {
        if self.sent_pkts_postwarm == 0 {
            0.0
        } else {
            (self.dropped_postwarm + self.marked_postwarm) as f64 / self.sent_pkts_postwarm as f64
        }
    }

    /// Mean post-warm-up throughput in Mb/s given the measurement span.
    pub fn mean_tput_mbps(&self, span: Duration) -> f64 {
        let secs = span.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.dequeued_bytes_postwarm as f64 * 8.0 / secs / 1e6
        }
    }
}

/// One periodic measurement tick, stored row-wise.
///
/// The monitor used to push each sampled quantity onto its own series
/// `Vec`, which meant the (rare, hence cache-cold) sample path touched one
/// tail line per series. One row per tick keeps the whole tick on a single
/// line; the familiar `(t, value)` series are materialized on demand by
/// the accessors below.
#[derive(Clone, Copy, Debug)]
struct SampleRow {
    /// Sample instant, seconds.
    t: f64,
    /// Instantaneous queue delay, ms.
    qdelay_ms: f64,
    /// Total bottleneck egress rate over the interval, Mb/s (valid only
    /// if `has_rate`).
    tput_mbps: f64,
    /// Fraction of link capacity used over the interval (valid only if
    /// `has_rate`).
    util: f64,
    /// Interval length, seconds — kept so per-flow throughput can be
    /// recomputed from cumulative byte counts with the exact same
    /// floating-point operations the eager path used.
    dt: f64,
    /// False for a zero-length interval (no rate quantities that tick).
    has_rate: bool,
    /// Whether the tick fell after the warm-up period.
    postwarm: bool,
}

/// Run-wide measurement state.
#[derive(Clone, Debug)]
/// `repr(C)` pins the field order so the state the rare sample tick
/// reads shares cache lines with state the per-packet record paths keep
/// warm: line one holds `warm_at` (read on every record) plus the
/// sample-tick scalars and the `samples` header; line two holds the
/// `flow_deq_now` header (written on every dequeue) plus the
/// `flow_deq_bytes` header. Sample ticks run ~10^4 events apart, so
/// without this co-location every scalar they touch is a cold miss.
#[repr(C)]
pub struct Monitor {
    /// `Time::ZERO + cfg.warmup`, precomputed for the per-record warm-up
    /// comparison.
    warm_at: Time,
    last_sample_at: Time,
    last_total_bytes: u64,
    /// Periodic samples, one row per tick (see [`SampleRow`]).
    samples: Vec<SampleRow>,
    /// Dense mirror of each flow's current `dequeued_bytes`, updated by
    /// the (cache-warm) dequeue path so the rare sample tick reads one or
    /// two lines instead of walking every `FlowAccount`.
    flow_deq_now: Vec<u64>,
    /// Cumulative `dequeued_bytes` of every flow at each rate-bearing
    /// sample row, as a flat column store (stride = `flows.len()`).
    /// [`Monitor::flow_tput_series`] differences consecutive rows to
    /// recover the per-interval series.
    flow_deq_bytes: Vec<u64>,
    cfg: MonitorConfig,
    /// Per-flow accounts, indexed by [`FlowId`].
    pub flows: Vec<FlowAccount>,
    /// `(t s, AQM control variable)` at each AQM update.
    pub control_series: Vec<(f64, f64)>,
    /// Per-packet queue delay in ms, post warm-up
    /// (only if [`MonitorConfig::record_sojourns`]).
    pub sojourn_ms: Vec<f32>,
    /// Completed size-limited flows: `(flow, start, completion)` — the
    /// raw material for flow-completion-time distributions (the paper's
    /// short-flow experiments).
    pub completions: Vec<(FlowId, Time, Time)>,
    end_of_last_run: Time,
    /// Expected per-flow packet count, set by [`Monitor::reserve`]; flows
    /// registered afterwards pre-size their sample vectors with it.
    flow_pkts_hint: usize,
}

impl Monitor {
    /// Create an empty monitor.
    pub fn new(cfg: MonitorConfig) -> Self {
        Monitor {
            cfg,
            flows: Vec::new(),
            control_series: Vec::new(),
            sojourn_ms: Vec::new(),
            completions: Vec::new(),
            samples: Vec::new(),
            flow_deq_bytes: Vec::new(),
            flow_deq_now: Vec::new(),
            last_sample_at: Time::ZERO,
            last_total_bytes: 0,
            end_of_last_run: Time::ZERO,
            warm_at: Time::ZERO + cfg.warmup,
            flow_pkts_hint: 0,
        }
    }

    /// Pre-size the sample vectors for an expected run shape so the
    /// per-packet recording paths never reallocate mid-run.
    ///
    /// `expected_samples` is the number of periodic recording ticks —
    /// size it for the *densest* periodic series, which is usually the
    /// AQM control-variable record at every update interval
    /// (≈ duration / Tupdate), not the coarser sample tick;
    /// `expected_pkts` is the total packets expected through the
    /// bottleneck (≈ rate × duration / packet size).
    /// Flows registered after this call pre-size their per-flow vectors
    /// from the same hints. Over-estimates only cost address space;
    /// callers should still cap `expected_pkts` to something sane.
    pub fn reserve(&mut self, expected_samples: usize, expected_pkts: usize) {
        self.samples.reserve(expected_samples);
        self.control_series.reserve(expected_samples);
        if self.cfg.record_sojourns {
            self.sojourn_ms.reserve(expected_pkts);
        }
        self.flow_pkts_hint = expected_pkts;
        self.flow_deq_bytes
            .reserve(expected_samples * self.flows.len().max(1));
    }

    /// The configured sampling interval.
    pub fn sample_interval(&self) -> Duration {
        self.cfg.sample_interval
    }

    /// The configured warm-up span.
    pub fn warmup(&self) -> Duration {
        self.cfg.warmup
    }

    /// Register the next flow (ids are dense and sequential).
    pub fn register_flow(&mut self, label: &str) {
        let mut acc = FlowAccount::new(label);
        if self.flow_pkts_hint > 0 {
            // A single flow can carry at most the whole link, so the
            // total-packet hint bounds any one flow; cap the per-flow
            // reservation so many-flow scenarios don't multiply it.
            let per_flow = self.flow_pkts_hint.min(1 << 16);
            if self.cfg.record_probs {
                acc.prob_samples.reserve(per_flow);
            }
            if self.cfg.record_flow_sojourns {
                acc.sojourn_ms.reserve(per_flow);
            }
        }
        self.flows.push(acc);
        self.flow_deq_now.push(0);
    }

    /// Access a flow's account.
    pub fn flow(&self, id: FlowId) -> &FlowAccount {
        &self.flows[id.idx()]
    }

    fn postwarm(&self, now: Time) -> bool {
        now >= self.warm_at
    }

    /// True once `now` has passed the configured warm-up — the same
    /// predicate every `record_*` method applies internally, exposed so
    /// other instruments (e.g. per-hop byte accounting in the core) can
    /// share the monitor's measurement window.
    pub fn postwarm_at(&self, now: Time) -> bool {
        self.postwarm(now)
    }

    /// Record a packet being offered to the bottleneck.
    pub fn record_sent(&mut self, flow: FlowId, bytes: usize, now: Time) {
        let postwarm = self.postwarm(now);
        let acc = &mut self.flows[flow.idx()];
        acc.sent_pkts += 1;
        acc.sent_bytes += bytes as u64;
        if postwarm {
            acc.sent_pkts_postwarm += 1;
        }
    }

    /// Record a packet being offered to the bottleneck together with the
    /// AQM's verdict on it — the fused form of
    /// [`Monitor::record_sent`] + [`Monitor::record_decision`] the send
    /// path uses, so the warm-up check and account lookup happen once.
    pub fn record_send(&mut self, flow: FlowId, bytes: usize, decision: Decision, now: Time) {
        let postwarm = self.postwarm(now);
        let acc = &mut self.flows[flow.idx()];
        acc.sent_pkts += 1;
        acc.sent_bytes += bytes as u64;
        if postwarm {
            acc.sent_pkts_postwarm += 1;
        }
        match decision.action {
            Action::Drop => {
                acc.dropped += 1;
                if postwarm {
                    acc.dropped_postwarm += 1;
                }
            }
            Action::Mark => {
                acc.marked += 1;
                if postwarm {
                    acc.marked_postwarm += 1;
                }
            }
            Action::Pass => {}
        }
        if self.cfg.record_probs && postwarm {
            acc.prob_samples.push(decision.prob as f32);
        }
    }

    /// Record the AQM decision for an offered packet.
    pub fn record_decision(&mut self, flow: FlowId, decision: Decision, now: Time) {
        let postwarm = self.postwarm(now);
        let acc = &mut self.flows[flow.idx()];
        match decision.action {
            Action::Drop => {
                acc.dropped += 1;
                if postwarm {
                    acc.dropped_postwarm += 1;
                }
            }
            Action::Mark => {
                acc.marked += 1;
                if postwarm {
                    acc.marked_postwarm += 1;
                }
            }
            Action::Pass => {}
        }
        if self.cfg.record_probs && postwarm {
            acc.prob_samples.push(decision.prob as f32);
        }
    }

    /// Record a departure from the bottleneck.
    pub fn record_dequeue(&mut self, flow: FlowId, bytes: usize, sojourn: Duration, now: Time) {
        let postwarm = self.postwarm(now);
        self.flow_deq_now[flow.idx()] += bytes as u64;
        let acc = &mut self.flows[flow.idx()];
        acc.dequeued_pkts += 1;
        acc.dequeued_bytes += bytes as u64;
        if postwarm {
            acc.dequeued_bytes_postwarm += bytes as u64;
            if self.cfg.record_flow_sojourns {
                acc.sojourn_ms.push(sojourn.as_millis_f64() as f32);
            }
            if self.cfg.record_sojourns {
                self.sojourn_ms.push(sojourn.as_millis_f64() as f32);
            }
        }
    }

    /// Record an arrival at the receiver.
    pub fn record_delivered(&mut self, flow: FlowId, bytes: usize, now: Time) {
        let postwarm = self.postwarm(now);
        let acc = &mut self.flows[flow.idx()];
        acc.delivered_pkts += 1;
        acc.delivered_bytes += bytes as u64;
        if postwarm {
            acc.delivered_bytes_postwarm += bytes as u64;
        }
    }

    /// Record the completion of a size-limited flow.
    pub fn record_completion(&mut self, flow: FlowId, started: Time, completed: Time) {
        self.completions.push((flow, started, completed));
    }

    /// Flow-completion times (seconds) pooled over flows with `label`,
    /// restricted to flows that started after the warm-up.
    pub fn completion_times(&self, label: &str) -> Vec<f64> {
        self.completions
            .iter()
            .filter(|(id, started, _)| {
                self.flows[id.idx()].label == label && self.postwarm(*started)
            })
            .map(|(_, started, completed)| (*completed - *started).as_secs_f64())
            .collect()
    }

    /// Record the AQM's control variable at an update tick.
    pub fn record_control_variable(&mut self, p: f64, now: Time) {
        self.control_series.push((now.as_secs_f64(), p));
    }

    /// Take a periodic sample of queue delay, throughput and utilization.
    pub fn sample(&mut self, queue: &dyn Qdisc, now: Time) {
        let t = now.as_secs_f64();
        let dt = now.saturating_since(self.last_sample_at).as_secs_f64();
        let qdelay_ms = queue.monitor_delay().as_millis_f64();
        let total = queue.stats().dequeued_bytes;
        let has_rate = dt > 0.0;
        let mut tput_mbps = 0.0;
        let mut util = 0.0;
        if has_rate {
            let bits = (total - self.last_total_bytes) as f64 * 8.0;
            tput_mbps = bits / dt / 1e6;
            util = bits / dt / queue.rate_bps() as f64;
            // Snapshot cumulative per-flow egress; the per-interval series
            // is differenced out lazily by `flow_tput_series`.
            if self.cfg.record_flow_tput {
                self.flow_deq_bytes.extend_from_slice(&self.flow_deq_now);
            }
        }
        self.samples.push(SampleRow {
            t,
            qdelay_ms,
            tput_mbps,
            util,
            dt,
            has_rate,
            postwarm: now >= self.warm_at,
        });
        self.last_total_bytes = total;
        self.last_sample_at = now;
        self.end_of_last_run = now;
    }

    /// `(t s, instantaneous queue delay ms)` at each sample tick.
    pub fn qdelay_series(&self) -> Vec<(f64, f64)> {
        self.samples.iter().map(|r| (r.t, r.qdelay_ms)).collect()
    }

    /// `(t s, total bottleneck egress rate Mb/s)` per interval.
    pub fn total_tput_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .filter(|r| r.has_rate)
            .map(|r| (r.t, r.tput_mbps))
            .collect()
    }

    /// `(t s, fraction of link capacity used)` per interval.
    pub fn util_series(&self) -> Vec<(f64, f64)> {
        self.samples
            .iter()
            .filter(|r| r.has_rate)
            .map(|r| (r.t, r.util))
            .collect()
    }

    /// Post-warm-up utilization samples (the values of
    /// [`Monitor::util_series`] excluding warm-up), for P1/mean/P99
    /// summaries (Figure 18).
    pub fn util_samples(&self) -> Vec<f32> {
        self.samples
            .iter()
            .filter(|r| r.has_rate && r.postwarm)
            .map(|r| r.util as f32)
            .collect()
    }

    /// Per-interval egress throughput of flow `idx` in Mb/s, materialized
    /// as a `(t s, Mb/s)` series by differencing the cumulative byte
    /// snapshots. The time axis is shared with
    /// [`Monitor::total_tput_series`]. Assumes all flows were registered
    /// before the first sample tick (true of every scenario driver:
    /// registration happens at setup).
    pub fn flow_tput_series(&self, idx: usize) -> Vec<(f64, f64)> {
        if !self.cfg.record_flow_tput {
            return Vec::new();
        }
        let n = self.flows.len();
        let mut prev = 0u64;
        self.samples
            .iter()
            .filter(|r| r.has_rate)
            .enumerate()
            .map(|(row, r)| {
                let cur = self.flow_deq_bytes[row * n + idx];
                let fbits = (cur - prev) as f64 * 8.0;
                prev = cur;
                (r.t, fbits / r.dt / 1e6)
            })
            .collect()
    }

    /// Post-warm-up measurement span (warm-up end to the last sample).
    pub fn measurement_span(&self) -> Duration {
        (self.end_of_last_run - (Time::ZERO + self.cfg.warmup)).max_zero()
    }

    /// Indices of flows whose label equals `label`.
    pub fn flows_labelled(&self, label: &str) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| f.label == label)
            .map(|(i, _)| i)
            .collect()
    }

    /// Pooled per-packet sojourn samples (ms) over flows with `label`
    /// (requires [`MonitorConfig::record_flow_sojourns`]).
    pub fn pooled_sojourns(&self, label: &str) -> Vec<f32> {
        let mut out = Vec::new();
        for i in self.flows_labelled(label) {
            out.extend_from_slice(&self.flows[i].sojourn_ms);
        }
        out
    }

    /// Pooled per-packet probability samples over flows with `label`.
    pub fn pooled_probs(&self, label: &str) -> Vec<f32> {
        let mut out = Vec::new();
        for i in self.flows_labelled(label) {
            out.extend_from_slice(&self.flows[i].prob_samples);
        }
        out
    }

    /// Mean post-warm-up throughput in Mb/s pooled over flows with `label`.
    pub fn pooled_mean_tput_mbps(&self, label: &str) -> f64 {
        let span = self.measurement_span();
        self.flows_labelled(label)
            .iter()
            .map(|&i| self.flows[i].mean_tput_mbps(span))
            .sum()
    }

    /// Serialize all mutable measurement state in a fixed field order
    /// (checkpointing). Configuration (`cfg`, the precomputed `warm_at`)
    /// is not written — restore targets a monitor built from the same
    /// [`MonitorConfig`] with the same flows registered.
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        w.time(self.last_sample_at);
        w.u64(self.last_total_bytes);
        w.time(self.end_of_last_run);
        w.usize(self.flow_pkts_hint);
        w.usize(self.samples.len());
        for row in &self.samples {
            w.f64(row.t);
            w.f64(row.qdelay_ms);
            w.f64(row.tput_mbps);
            w.f64(row.util);
            w.f64(row.dt);
            w.bool(row.has_rate);
            w.bool(row.postwarm);
        }
        w.usize(self.flow_deq_now.len());
        for &v in &self.flow_deq_now {
            w.u64(v);
        }
        w.usize(self.flow_deq_bytes.len());
        for &v in &self.flow_deq_bytes {
            w.u64(v);
        }
        w.usize(self.control_series.len());
        for &(t, p) in &self.control_series {
            w.f64(t);
            w.f64(p);
        }
        w.usize(self.sojourn_ms.len());
        for &v in &self.sojourn_ms {
            w.f32(v);
        }
        w.usize(self.completions.len());
        for &(flow, started, completed) in &self.completions {
            w.u32(flow.0);
            w.time(started);
            w.time(completed);
        }
        w.usize(self.flows.len());
        for acc in &self.flows {
            w.u64(acc.sent_pkts);
            w.u64(acc.sent_bytes);
            w.u64(acc.sent_pkts_postwarm);
            w.u64(acc.dropped);
            w.u64(acc.marked);
            w.u64(acc.dropped_postwarm);
            w.u64(acc.marked_postwarm);
            w.u64(acc.dequeued_pkts);
            w.u64(acc.dequeued_bytes);
            w.u64(acc.dequeued_bytes_postwarm);
            w.u64(acc.delivered_pkts);
            w.u64(acc.delivered_bytes);
            w.u64(acc.delivered_bytes_postwarm);
            w.usize(acc.prob_samples.len());
            for &v in &acc.prob_samples {
                w.f32(v);
            }
            w.usize(acc.sojourn_ms.len());
            for &v in &acc.sojourn_ms {
                w.f32(v);
            }
        }
    }

    /// Restore state captured by [`Monitor::save_ckpt`]. The monitor must
    /// already have the same flows registered (labels are configuration
    /// and are kept, not restored).
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        self.last_sample_at = r.time()?;
        self.last_total_bytes = r.u64()?;
        self.end_of_last_run = r.time()?;
        self.flow_pkts_hint = r.usize()?;
        let n = r.usize()?;
        self.samples.clear();
        for _ in 0..n {
            self.samples.push(SampleRow {
                t: r.f64()?,
                qdelay_ms: r.f64()?,
                tput_mbps: r.f64()?,
                util: r.f64()?,
                dt: r.f64()?,
                has_rate: r.bool()?,
                postwarm: r.bool()?,
            });
        }
        let n = r.usize()?;
        self.flow_deq_now.clear();
        for _ in 0..n {
            self.flow_deq_now.push(r.u64()?);
        }
        let n = r.usize()?;
        self.flow_deq_bytes.clear();
        for _ in 0..n {
            self.flow_deq_bytes.push(r.u64()?);
        }
        let n = r.usize()?;
        self.control_series.clear();
        for _ in 0..n {
            let t = r.f64()?;
            let p = r.f64()?;
            self.control_series.push((t, p));
        }
        let n = r.usize()?;
        self.sojourn_ms.clear();
        for _ in 0..n {
            self.sojourn_ms.push(r.f32()?);
        }
        let n = r.usize()?;
        self.completions.clear();
        for _ in 0..n {
            let flow = FlowId(r.u32()?);
            let started = r.time()?;
            let completed = r.time()?;
            self.completions.push((flow, started, completed));
        }
        let n = r.usize()?;
        if n != self.flows.len() {
            return Err(CkptError::Corrupt("monitor flow count mismatch"));
        }
        for acc in &mut self.flows {
            acc.sent_pkts = r.u64()?;
            acc.sent_bytes = r.u64()?;
            acc.sent_pkts_postwarm = r.u64()?;
            acc.dropped = r.u64()?;
            acc.marked = r.u64()?;
            acc.dropped_postwarm = r.u64()?;
            acc.marked_postwarm = r.u64()?;
            acc.dequeued_pkts = r.u64()?;
            acc.dequeued_bytes = r.u64()?;
            acc.dequeued_bytes_postwarm = r.u64()?;
            acc.delivered_pkts = r.u64()?;
            acc.delivered_bytes = r.u64()?;
            acc.delivered_bytes_postwarm = r.u64()?;
            let k = r.usize()?;
            acc.prob_samples.clear();
            for _ in 0..k {
                acc.prob_samples.push(r.f32()?);
            }
            let k = r.usize()?;
            acc.sojourn_ms.clear();
            for _ in 0..k {
                acc.sojourn_ms.push(r.f32()?);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aqm::{Decision, PassAqm};
    use crate::queue::BottleneckQueue;
    use crate::packet::{Ecn, Packet};
    use crate::queue::QueueConfig;
    use pi2_simcore::Rng;

    fn monitor() -> Monitor {
        Monitor::new(MonitorConfig::default())
    }

    #[test]
    fn reserve_presizes_sample_vectors() {
        let mut m = monitor();
        m.register_flow("before");
        m.reserve(1000, 50_000);
        m.register_flow("after");
        assert!(m.samples.capacity() >= 1000);
        assert!(m.sojourn_ms.capacity() >= 50_000);
        // Flows registered after the hint pre-size their prob vector.
        assert!(m.flows[1].prob_samples.capacity() >= 50_000.min(1 << 16));
        // Behaviour is unchanged: recording still works for both flows.
        m.record_decision(FlowId(0), Decision::pass(0.1), Time::from_secs(1));
        m.record_decision(FlowId(1), Decision::pass(0.2), Time::from_secs(1));
        assert_eq!(m.flows[0].prob_samples.len(), 1);
        assert_eq!(m.flows[1].prob_samples.len(), 1);
    }

    #[test]
    fn registration_and_counters() {
        let mut m = monitor();
        m.register_flow("cubic");
        m.register_flow("dctcp");
        m.record_sent(FlowId(0), 1500, Time::ZERO);
        m.record_sent(FlowId(0), 1500, Time::ZERO);
        m.record_decision(FlowId(0), Decision::drop(0.25), Time::ZERO);
        m.record_decision(FlowId(0), Decision::pass(0.25), Time::ZERO);
        let f = m.flow(FlowId(0));
        assert_eq!(f.sent_pkts, 2);
        assert_eq!(f.dropped, 1);
        assert_eq!(f.signal_fraction(), 0.5);
        assert_eq!(m.flow(FlowId(1)).sent_pkts, 0);
    }

    #[test]
    fn warmup_excludes_early_samples() {
        let mut m = Monitor::new(MonitorConfig {
            warmup: Duration::from_secs(10),
            ..MonitorConfig::default()
        });
        m.register_flow("f");
        m.record_dequeue(FlowId(0), 1500, Duration::from_millis(5), Time::from_secs(1));
        m.record_dequeue(FlowId(0), 1500, Duration::from_millis(7), Time::from_secs(11));
        assert_eq!(m.sojourn_ms.len(), 1);
        assert!((m.sojourn_ms[0] - 7.0).abs() < 1e-6);
        assert_eq!(m.flow(FlowId(0)).dequeued_bytes, 3000);
        assert_eq!(m.flow(FlowId(0)).dequeued_bytes_postwarm, 1500);
    }

    #[test]
    fn signal_fraction_and_throughput_share_the_warmup_window() {
        // Pre-warm-up traffic (heavily signalled slow-start) must not leak
        // into signal_fraction when mean_tput_mbps already excludes it:
        // both read the post-warm-up window.
        let mut m = Monitor::new(MonitorConfig {
            warmup: Duration::from_secs(10),
            ..MonitorConfig::default()
        });
        m.register_flow("f");
        let pre = Time::from_secs(1);
        let post = Time::from_secs(11);
        // Before warm-up: 3 sent, 2 dropped, 1 delivered.
        for _ in 0..3 {
            m.record_sent(FlowId(0), 1500, pre);
        }
        m.record_decision(FlowId(0), Decision::drop(0.9), pre);
        m.record_decision(FlowId(0), Decision::drop(0.9), pre);
        m.record_decision(FlowId(0), Decision::pass(0.9), pre);
        m.record_delivered(FlowId(0), 1500, pre);
        // After warm-up: 4 sent, 1 marked, 3 delivered.
        for _ in 0..4 {
            m.record_sent(FlowId(0), 1500, post);
        }
        m.record_decision(FlowId(0), Decision::mark(0.1), post);
        for _ in 0..3 {
            m.record_decision(FlowId(0), Decision::pass(0.1), post);
            m.record_delivered(FlowId(0), 1500, post);
        }
        let f = m.flow(FlowId(0));
        // Full-run counters still see everything.
        assert_eq!(f.sent_pkts, 7);
        assert_eq!(f.dropped, 2);
        assert_eq!(f.marked, 1);
        assert_eq!(f.delivered_bytes, 6000);
        // The signal fraction is post-warm-up only: 1 mark / 4 sent, not
        // the full-run 3/7.
        assert_eq!(f.sent_pkts_postwarm, 4);
        assert_eq!(f.dropped_postwarm, 0);
        assert_eq!(f.marked_postwarm, 1);
        assert_eq!(f.signal_fraction(), 0.25);
        assert_eq!(f.delivered_bytes_postwarm, 4500);
    }

    #[test]
    fn sample_computes_throughput_and_utilization() {
        let mut m = monitor();
        m.register_flow("f");
        let mut q = BottleneckQueue::new(
            QueueConfig {
                rate_bps: 12_000_000,
                buffer_bytes: usize::MAX,
            },
            Box::new(PassAqm),
        );
        let mut rng = Rng::new(1);
        // Push 1000 packets of 1500 B through the queue accounting.
        for i in 0..1000u64 {
            q.offer(
                Packet::data(FlowId(0), i, 1500, Ecn::NotEct, Time::ZERO),
                Time::ZERO,
                &mut rng,
            );
        }
        for _ in 0..1000 {
            q.pop(Time::from_millis(1));
        }
        // Mirror the departures into the per-flow accounting.
        for _ in 0..1000 {
            m.record_dequeue(FlowId(0), 1500, Duration::from_millis(1), Time::from_millis(1));
        }
        m.sample(&q, Time::from_secs(1));
        // 1000*1500*8 bits over 1 s = 12 Mb/s on a 12 Mb/s link -> util 1.0.
        assert_eq!(m.total_tput_series().len(), 1);
        assert!((m.total_tput_series()[0].1 - 12.0).abs() < 1e-9);
        assert!((m.util_series()[0].1 - 1.0).abs() < 1e-9);
        // The per-flow series shares the time axis and reconstructs the
        // same interval rate from the cumulative snapshots.
        let per_flow = m.flow_tput_series(0);
        assert_eq!(per_flow.len(), 1);
        assert!((per_flow[0].1 - 12.0).abs() < 1e-9);
        assert_eq!(m.qdelay_series().len(), 1);
    }

    #[test]
    fn label_grouping_pools_flows() {
        let mut m = monitor();
        m.register_flow("cubic");
        m.register_flow("dctcp");
        m.register_flow("cubic");
        assert_eq!(m.flows_labelled("cubic"), vec![0, 2]);
        m.record_decision(FlowId(0), Decision::pass(0.1), Time::from_secs(1));
        m.record_decision(FlowId(2), Decision::pass(0.3), Time::from_secs(1));
        let pooled = m.pooled_probs("cubic");
        assert_eq!(pooled.len(), 2);
    }

    #[test]
    fn completions_respect_warmup_and_labels() {
        let mut m = Monitor::new(MonitorConfig {
            warmup: Duration::from_secs(10),
            ..MonitorConfig::default()
        });
        m.register_flow("short");
        m.register_flow("long");
        m.register_flow("short");
        // One pre-warm-up completion (excluded), two post.
        m.record_completion(FlowId(0), Time::from_secs(5), Time::from_secs(6));
        m.record_completion(FlowId(1), Time::from_secs(12), Time::from_secs(15));
        m.record_completion(FlowId(2), Time::from_secs(20), Time::from_secs(22));
        assert_eq!(m.completions.len(), 3);
        let short = m.completion_times("short");
        assert_eq!(short, vec![2.0]);
        let long = m.completion_times("long");
        assert_eq!(long, vec![3.0]);
    }

    #[test]
    fn per_flow_sojourns_pool_by_label() {
        let mut m = Monitor::new(MonitorConfig {
            record_flow_sojourns: true,
            ..MonitorConfig::default()
        });
        m.register_flow("a");
        m.register_flow("b");
        m.record_dequeue(FlowId(0), 1500, Duration::from_millis(3), Time::from_secs(1));
        m.record_dequeue(FlowId(1), 1500, Duration::from_millis(9), Time::from_secs(1));
        m.record_dequeue(FlowId(0), 1500, Duration::from_millis(5), Time::from_secs(2));
        assert_eq!(m.pooled_sojourns("a"), vec![3.0, 5.0]);
        assert_eq!(m.pooled_sojourns("b"), vec![9.0]);
        assert!(m.pooled_sojourns("c").is_empty());
    }

    #[test]
    fn mean_tput_uses_postwarm_bytes() {
        let mut acc = FlowAccount::new("f");
        acc.dequeued_bytes_postwarm = 1_250_000; // 10 Mbit
        assert!((acc.mean_tput_mbps(Duration::from_secs(10)) - 1.0).abs() < 1e-12);
        assert_eq!(acc.mean_tput_mbps(Duration::ZERO), 0.0);
    }
}
