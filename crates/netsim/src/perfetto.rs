//! Chrome trace-event JSON export — timelines the Perfetto UI opens
//! directly (<https://ui.perfetto.dev>, fully offline).
//!
//! [`PerfettoSink`] maps the simulator's telemetry stream onto tracks:
//!
//! * one *process* per hop (`pid = hop + 1`) carrying counter tracks for
//!   queue depth, per-packet sojourn, and — from the [`AqmState`] probes —
//!   queue delay and the controller's probabilities (`p'`, `p`, scalable);
//! * one *process* for flows (`pid = 100`), with a thread per flow whose
//!   lifetime renders as a single slice and whose drops/marks render as
//!   instant events on that thread's track;
//! * a global annotation track for scheduled disturbances and audit
//!   annotations via [`PerfettoSink::instant`].
//!
//! The output is the legacy JSON trace format (`{"traceEvents":[...]}`),
//! chosen over protobuf deliberately: it needs no dependency, diffs in
//! code review, and Perfetto's importer treats it as a first-class input.
//! Timestamps are microseconds; we render them from the simulator's
//! nanosecond clock with integer math only, so the file is byte-for-byte
//! deterministic across runs and platforms.
//!
//! Like every [`TraceSink`], the sink is a pure observer: attaching it
//! cannot perturb a run, and a traced simulation stays bit-identical to an
//! untraced one.

use crate::aqm::AqmState;
use crate::trace::{TraceEvent, TraceSink};
use pi2_simcore::Time;
use std::io::{self, Write};

/// The synthetic process id hosting all per-flow tracks. Hop processes
/// occupy `1..=hops`, so any hop count below 99 stays clear of it.
pub const FLOW_PID: u32 = 100;

/// Microseconds with fixed three-digit nanosecond fraction, integer math
/// only (no float rounding → deterministic output).
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Milliseconds with fixed six-digit fraction from a nanosecond count.
fn ms_from_ns(ns: u64) -> String {
    format!("{}.{:06}", ns / 1_000_000, ns % 1_000_000)
}

/// A finite JSON number; non-finite values clamp to 0 (Perfetto rejects
/// `null` samples in counter tracks, and the controllers never legitimately
/// produce them).
fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escape a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// First/last event timestamps observed for one flow (drives the lifetime
/// slice emitted at close).
#[derive(Clone, Copy)]
struct FlowSpan {
    first_ns: u64,
    last_ns: u64,
}

/// Streaming Chrome-JSON trace writer (see the module docs for the track
/// schema). Write errors are sticky and reported by [`TraceSink::flush`];
/// the first `flush` finalizes the file (flow lifetime slices, track
/// metadata, closing bracket) and further events are ignored.
pub struct PerfettoSink<W: Write> {
    w: W,
    err: Option<io::Error>,
    records: u64,
    closed: bool,
    /// Running queue depth per hop (admissions minus departures), the
    /// source of the `queue_depth_pkts` counter track.
    depth: Vec<i64>,
    /// Per-flow first/last event times, indexed by `FlowId`.
    spans: Vec<Option<FlowSpan>>,
}

impl<W: Write> PerfettoSink<W> {
    /// Stream onto `w`, writing the JSON preamble immediately.
    pub fn new(w: W) -> Self {
        let mut sink = PerfettoSink {
            w,
            err: None,
            records: 0,
            closed: false,
            depth: Vec::new(),
            spans: Vec::new(),
        };
        if let Err(e) = sink.w.write_all(b"{\"traceEvents\":[") {
            sink.err = Some(e);
        }
        sink
    }

    /// Trace records successfully written so far (events + metadata).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Unwrap the underlying writer (tests reading a `Vec<u8>` back).
    pub fn into_inner(self) -> W {
        self.w
    }

    fn write_record(&mut self, body: &str) {
        if self.err.is_some() || self.closed {
            return;
        }
        let sep: &[u8] = if self.records == 0 { b"\n" } else { b",\n" };
        if let Err(e) = self
            .w
            .write_all(sep)
            .and_then(|_| self.w.write_all(body.as_bytes()))
        {
            self.err = Some(e);
        } else {
            self.records += 1;
        }
    }

    fn counter(&mut self, pid: u32, t_ns: u64, name: &str, value: &str) {
        let rec = format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"ts\":{},\"name\":\"{}\",\
             \"args\":{{\"value\":{value}}}}}",
            ts_us(t_ns),
            esc(name)
        );
        self.write_record(&rec);
    }

    fn flow_instant(&mut self, flow: u32, t_ns: u64, name: &str, hop: u32, prob: f64) {
        let rec = format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"pid\":{FLOW_PID},\"tid\":{},\"ts\":{},\
             \"name\":\"{}\",\"args\":{{\"hop\":{hop},\"prob\":{}}}}}",
            flow + 1,
            ts_us(t_ns),
            esc(name),
            num(prob)
        );
        self.write_record(&rec);
    }

    /// Emit a global instant event (scope `g`) on the annotation track —
    /// scheduled disturbances, audit annotations. Callers must emit
    /// same-named instants in non-decreasing time order to keep the
    /// per-track monotonicity guarantee.
    pub fn instant(&mut self, t: Time, name: &str) {
        let rec = format!(
            "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"{}\"}}",
            ts_us(t.as_nanos()),
            esc(name)
        );
        self.write_record(&rec);
    }

    fn touch_flow(&mut self, flow: u32, t_ns: u64) {
        let idx = flow as usize;
        if idx >= self.spans.len() {
            self.spans.resize(idx + 1, None);
        }
        match &mut self.spans[idx] {
            Some(span) => span.last_ns = t_ns,
            slot @ None => {
                *slot = Some(FlowSpan {
                    first_ns: t_ns,
                    last_ns: t_ns,
                })
            }
        }
    }

    fn depth_at(&mut self, hop: u32, delta: i64) -> i64 {
        let idx = hop as usize;
        if idx >= self.depth.len() {
            self.depth.resize(idx + 1, 0);
        }
        self.depth[idx] += delta;
        self.depth[idx]
    }

    fn event_at_hop(&mut self, hop: u32, ev: &TraceEvent) {
        let pid = hop + 1;
        match *ev {
            TraceEvent::Enqueue { t, flow, .. } => {
                let t_ns = t.as_nanos();
                let d = self.depth_at(hop, 1);
                self.counter(pid, t_ns, "queue_depth_pkts", &d.to_string());
                self.touch_flow(flow.0, t_ns);
            }
            TraceEvent::Dequeue {
                t, flow, sojourn, ..
            } => {
                let t_ns = t.as_nanos();
                let d = self.depth_at(hop, -1);
                self.counter(pid, t_ns, "queue_depth_pkts", &d.to_string());
                let soj = ms_from_ns(sojourn.as_nanos().max(0) as u64);
                self.counter(pid, t_ns, "sojourn_ms", &soj);
                self.touch_flow(flow.0, t_ns);
            }
            TraceEvent::Mark { t, flow, prob, .. } => {
                let t_ns = t.as_nanos();
                self.flow_instant(flow.0, t_ns, "mark", hop, prob);
                self.touch_flow(flow.0, t_ns);
            }
            TraceEvent::Drop { t, flow, prob, .. } => {
                let t_ns = t.as_nanos();
                self.flow_instant(flow.0, t_ns, "drop", hop, prob);
                self.touch_flow(flow.0, t_ns);
            }
        }
    }

    fn aqm_state_at_hop(&mut self, hop: u32, t: Time, st: &AqmState) {
        let pid = hop + 1;
        let t_ns = t.as_nanos();
        self.counter(
            pid,
            t_ns,
            "qdelay_ms",
            &ms_from_ns(st.qdelay.as_nanos().max(0) as u64),
        );
        self.counter(pid, t_ns, "p_prime", &num(st.p_prime));
        self.counter(pid, t_ns, "prob", &num(st.prob));
        self.counter(pid, t_ns, "scalable_prob", &num(st.scalable_prob));
    }

    /// Finalize the trace: per-flow lifetime slices, process/thread
    /// metadata, the closing bracket. Idempotent — later calls (and
    /// [`TraceSink::flush`]) are no-ops beyond flushing the writer.
    pub fn finish(&mut self) -> io::Result<()> {
        if !self.closed {
            for (idx, span) in self.spans.clone().iter().enumerate() {
                let Some(span) = span else { continue };
                let dur_ns = span.last_ns - span.first_ns;
                let rec = format!(
                    "{{\"ph\":\"X\",\"pid\":{FLOW_PID},\"tid\":{},\"ts\":{},\"dur\":{},\
                     \"name\":\"flow {idx}\"}}",
                    idx + 1,
                    ts_us(span.first_ns),
                    ts_us(dur_ns)
                );
                self.write_record(&rec);
            }
            for hop in 0..self.depth.len() {
                let label = if hop == 0 {
                    "hop 0 (bottleneck)".to_string()
                } else {
                    format!("hop {hop}")
                };
                let rec = format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"{label}\"}}}}",
                    hop + 1
                );
                self.write_record(&rec);
            }
            if !self.spans.is_empty() {
                let rec = format!(
                    "{{\"ph\":\"M\",\"pid\":{FLOW_PID},\"tid\":0,\"name\":\"process_name\",\
                     \"args\":{{\"name\":\"flows\"}}}}"
                );
                self.write_record(&rec);
                for idx in 0..self.spans.len() {
                    if self.spans[idx].is_none() {
                        continue;
                    }
                    let rec = format!(
                        "{{\"ph\":\"M\",\"pid\":{FLOW_PID},\"tid\":{},\"name\":\"thread_name\",\
                         \"args\":{{\"name\":\"flow {idx}\"}}}}",
                        idx + 1
                    );
                    self.write_record(&rec);
                }
            }
            if self.err.is_none() {
                if let Err(e) = self.w.write_all(b"\n]}\n") {
                    self.err = Some(e);
                }
            }
            self.closed = true;
        }
        if let Some(e) = self.err.take() {
            return Err(e);
        }
        self.w.flush()
    }
}

impl<W: Write> TraceSink for PerfettoSink<W> {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.event_at_hop(0, ev);
    }
    fn on_aqm_state(&mut self, t: Time, state: &AqmState) {
        self.aqm_state_at_hop(0, t, state);
    }
    fn on_hop_event(&mut self, hop: u32, ev: &TraceEvent) {
        self.event_at_hop(hop, ev);
    }
    fn on_hop_aqm_state(&mut self, hop: u32, t: Time, state: &AqmState) {
        self.aqm_state_at_hop(hop, t, state);
    }
    fn flush(&mut self) -> io::Result<()> {
        self.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, FlowId};
    use pi2_simcore::Duration;

    fn events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Enqueue {
                t: Time::from_millis(1),
                flow: FlowId(0),
                seq: 0,
                ecn: Ecn::NotEct,
            },
            TraceEvent::Mark {
                t: Time::from_millis(2),
                flow: FlowId(1),
                seq: 0,
                prob: 0.25,
            },
            TraceEvent::Enqueue {
                t: Time::from_millis(2),
                flow: FlowId(1),
                seq: 0,
                ecn: Ecn::Ce,
            },
            TraceEvent::Drop {
                t: Time::from_millis(3),
                flow: FlowId(0),
                seq: 1,
                prob: 0.5,
            },
            TraceEvent::Dequeue {
                t: Time::from_millis(4),
                flow: FlowId(0),
                seq: 0,
                sojourn: Duration::from_micros(1500),
            },
        ]
    }

    #[test]
    fn emits_counters_instants_and_lifetimes() {
        let mut sink = PerfettoSink::new(Vec::new());
        for ev in events() {
            sink.on_event(&ev);
        }
        sink.on_aqm_state(Time::from_millis(16), &AqmState::default());
        sink.on_hop_event(
            2,
            &TraceEvent::Enqueue {
                t: Time::from_millis(5),
                flow: FlowId(0),
                seq: 2,
                ecn: Ecn::NotEct,
            },
        );
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        // Queue-depth counters track the running enq-deq balance.
        assert!(text.contains("\"name\":\"queue_depth_pkts\",\"args\":{\"value\":2}"));
        assert!(text.contains("\"name\":\"queue_depth_pkts\",\"args\":{\"value\":1}"));
        // Drops and marks are flow-track instants.
        assert!(text.contains("\"ph\":\"i\",\"s\":\"t\",\"pid\":100,\"tid\":2,\"ts\":2000.000,\"name\":\"mark\""));
        assert!(text.contains("\"name\":\"drop\",\"args\":{\"hop\":0,\"prob\":0.5}"));
        // Sojourn + AQM-state counters land on the hop-0 process (pid 1).
        assert!(text.contains("\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":4000.000,\"name\":\"sojourn_ms\",\"args\":{\"value\":1.500000}"));
        assert!(text.contains("\"name\":\"qdelay_ms\""));
        assert!(text.contains("\"name\":\"p_prime\""));
        // The hop event opened a second hop process (pid 3 = hop 2 + 1).
        assert!(text.contains("\"ph\":\"C\",\"pid\":3,\"tid\":0"));
        assert!(text.contains("\"args\":{\"name\":\"hop 2\"}"));
        // Lifetimes close as X slices with metadata naming each flow.
        assert!(text.contains("\"ph\":\"X\",\"pid\":100,\"tid\":1,\"ts\":1000.000,\"dur\":4000.000,\"name\":\"flow 0\""));
        assert!(text.contains("\"args\":{\"name\":\"flow 1\"}"));
        assert!(text.contains("\"args\":{\"name\":\"hop 0 (bottleneck)\"}"));
    }

    #[test]
    fn finish_is_idempotent_and_closes_the_stream() {
        let mut sink = PerfettoSink::new(Vec::new());
        sink.on_event(&events()[0]);
        sink.finish().unwrap();
        let n = sink.records();
        // Events after close are ignored; finishing again adds nothing.
        sink.on_event(&events()[3]);
        sink.finish().unwrap();
        assert_eq!(sink.records(), n);
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.matches("]}").count(), 1);
    }

    #[test]
    fn instants_escape_names_and_use_the_annotation_track() {
        let mut sink = PerfettoSink::new(Vec::new());
        sink.instant(Time::from_millis(30_000), "rate \"step\" 40->10");
        sink.finish().unwrap();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains(
            "{\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":0,\"ts\":30000000.000,\
             \"name\":\"rate \\\"step\\\" 40->10\"}"
        ));
    }

    #[test]
    fn timestamps_are_integer_exact_microseconds() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(1), "0.001");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1_000), "1.000");
        assert_eq!(ts_us(1_234_567), "1234.567");
        assert_eq!(ms_from_ns(1_500_000), "1.500000");
        assert_eq!(ms_from_ns(42), "0.000042");
    }
}
