//! The bottleneck FIFO queue.
//!
//! One queue guards the dumbbell bottleneck. Admission is delegated to the
//! attached [`Aqm`]; a hard byte limit on top models the physical buffer
//! (Table 1 of the paper: 40 000 packets, i.e. effectively "large"), so
//! unresponsive overload is eventually tail-dropped exactly as the paper
//! describes ("if needed, tail-drop will control non-responsive traffic").

use crate::aqm::{Action, Aqm, AqmState, Decision, QueueSnapshot};
use crate::ckpt::{read_packet, write_packet};
use crate::packet::{Ecn, Packet};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration, Rng, Time};
use std::collections::VecDeque;

/// Static configuration of the bottleneck queue + link.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Link rate in bits per second.
    pub rate_bps: u64,
    /// Physical buffer limit in bytes; arrivals beyond it are tail-dropped
    /// regardless of the AQM's verdict.
    pub buffer_bytes: usize,
}

impl Default for QueueConfig {
    fn default() -> Self {
        // Paper Table 1: 40 000 packets of 1500 B ≈ 60 MB — big enough that
        // the AQM, not the buffer, is in control.
        QueueConfig {
            rate_bps: 10_000_000,
            buffer_bytes: 40_000 * 1500,
        }
    }
}

/// Aggregate counters kept by the queue.
#[derive(Clone, Copy, Debug, Default)]
pub struct QueueStats {
    /// Packets admitted.
    pub enqueued: u64,
    /// Packets that completed transmission.
    pub dequeued: u64,
    /// Bytes that completed transmission.
    pub dequeued_bytes: u64,
    /// Packets dropped by the AQM decision.
    pub aqm_dropped: u64,
    /// Packets CE-marked by the AQM decision.
    pub aqm_marked: u64,
    /// Packets tail-dropped on buffer overflow.
    pub overflowed: u64,
}

/// A queueing discipline attached to the bottleneck link.
///
/// The simulator interacts with the bottleneck only through this trait,
/// so schemes with internal structure — the DualQ Coupled AQM's two
/// queues, per-flow queuing — plug in alongside the plain FIFO
/// [`BottleneckQueue`]. A qdisc does not schedule events itself;
/// [`crate::sim::SimCore`] owns the event clock and calls `offer`/`pop`
/// at the right instants.
pub trait Qdisc {
    /// Offer a packet for admission; the returned decision reflects any
    /// internal AQM verdict or overflow drop.
    fn offer(&mut self, pkt: Packet, now: Time, rng: &mut Rng) -> Decision;

    /// Remove the packet whose transmission just completed, returning it
    /// and its sojourn time.
    fn pop(&mut self, now: Time) -> Option<(Packet, Duration)>;

    /// Size of the next packet to serialize, if any.
    fn head_size(&self) -> Option<usize>;

    /// Total bytes queued across all internal queues.
    fn len_bytes(&self) -> usize;

    /// Total packets queued.
    fn len_pkts(&self) -> usize;

    /// True if nothing is queued.
    fn is_empty(&self) -> bool {
        self.len_pkts() == 0
    }

    /// Current link rate in bits/s.
    fn rate_bps(&self) -> u64;

    /// Change the link rate.
    fn set_rate_bps(&mut self, rate_bps: u64);

    /// Periodic controller update.
    fn update(&mut self, now: Time);

    /// How often [`Qdisc::update`] should run.
    fn update_interval(&self) -> Option<Duration>;

    /// The internal control variable, for monitoring.
    fn control_variable(&self) -> f64;

    /// Snapshot the AQM control state for telemetry, taken right after
    /// each [`Qdisc::update`] tick. The default mirrors
    /// [`Qdisc::control_variable`] into both probability fields.
    fn probe(&self) -> AqmState {
        AqmState {
            p_prime: self.control_variable(),
            prob: self.control_variable(),
            ..AqmState::default()
        }
    }

    /// Aggregate counters.
    fn stats(&self) -> &QueueStats;

    /// Instantaneous queue-delay estimate for time-series sampling, in
    /// the spirit of the paper's plots (`qlen·8/C` for a FIFO).
    fn monitor_delay(&self) -> Duration {
        Duration::serialization(self.len_bytes(), self.rate_bps())
    }

    /// Serialize all mutable qdisc state — queued packets, link rate,
    /// counters and the embedded AQM's controller state — in a fixed
    /// field order (checkpointing). The default writes nothing, which is
    /// correct only for stateless test stubs; every real qdisc overrides
    /// this.
    fn save_ckpt(&self, w: &mut CkptWriter) {
        let _ = w;
    }

    /// Restore state captured by [`Qdisc::save_ckpt`] into a freshly
    /// constructed qdisc of the same type and configuration.
    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let _ = r;
        Ok(())
    }
}

/// A FIFO queue with AQM admission and a serializing link.
///
/// The queue itself does not schedule events; [`crate::sim::SimCore`] owns
/// the event clock and calls [`BottleneckQueue::offer`] / `pop` at the
/// right instants.
pub struct BottleneckQueue {
    fifo: VecDeque<(Packet, Time)>,
    qlen_bytes: usize,
    rate_bps: u64,
    buffer_bytes: usize,
    aqm: Box<dyn Aqm>,
    last_sojourn: Option<Duration>,
    /// Running statistics.
    pub stats: QueueStats,
}

impl BottleneckQueue {
    /// Create a queue with the given link/buffer configuration and policy.
    pub fn new(cfg: QueueConfig, aqm: Box<dyn Aqm>) -> Self {
        assert!(cfg.rate_bps > 0, "link rate must be positive");
        // Pre-size the FIFO for a typical AQM-controlled standing queue so
        // `offer` stays allocation-free in steady state; deep-buffer
        // pathologies (tail-drop bufferbloat) may still grow it, amortized.
        let cap = (cfg.buffer_bytes / 1500).clamp(64, 4096);
        BottleneckQueue {
            fifo: VecDeque::with_capacity(cap),
            qlen_bytes: 0,
            rate_bps: cfg.rate_bps,
            buffer_bytes: cfg.buffer_bytes,
            aqm,
            last_sojourn: None,
            stats: QueueStats::default(),
        }
    }

    /// Current link rate in bits/s.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Change the link rate (takes effect from the next transmission; the
    /// packet currently on the wire finishes at the old rate, as on real
    /// rate-adapting links).
    pub fn set_rate_bps(&mut self, rate_bps: u64) {
        assert!(rate_bps > 0, "link rate must be positive");
        self.rate_bps = rate_bps;
    }

    /// Bytes currently queued.
    pub fn len_bytes(&self) -> usize {
        self.qlen_bytes
    }

    /// Packets currently queued.
    pub fn len_pkts(&self) -> usize {
        self.fifo.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Size in bytes of the packet at the head (the next to serialize).
    pub fn head_size(&self) -> Option<usize> {
        self.fifo.front().map(|(p, _)| p.size)
    }

    /// Immutable view handed to the AQM.
    pub fn snapshot(&self) -> QueueSnapshot {
        QueueSnapshot {
            qlen_bytes: self.qlen_bytes,
            qlen_pkts: self.fifo.len(),
            link_rate_bps: self.rate_bps,
            last_sojourn: self.last_sojourn,
        }
    }

    /// Expose the AQM for monitoring (e.g. sampling its probability).
    pub fn aqm(&self) -> &dyn Aqm {
        self.aqm.as_ref()
    }

    /// Run the periodic AQM update.
    pub fn aqm_update(&mut self, now: Time) {
        let snap = self.snapshot();
        self.aqm.update(&snap, now);
    }

    /// The AQM's requested update period.
    pub fn aqm_update_interval(&self) -> Option<Duration> {
        self.aqm.update_interval()
    }

    /// Offer a packet for admission. Returns the decision that was applied
    /// (after the buffer-limit override, which reports as a drop with
    /// probability 1 and increments the overflow counter).
    pub fn offer(&mut self, mut pkt: Packet, now: Time, rng: &mut Rng) -> Decision {
        let snap = self.snapshot();
        let decision = self.aqm.on_enqueue(&pkt, &snap, now, rng);
        match decision.action {
            Action::Drop => {
                self.stats.aqm_dropped += 1;
                decision
            }
            Action::Mark | Action::Pass => {
                if self.qlen_bytes + pkt.size > self.buffer_bytes {
                    self.stats.overflowed += 1;
                    return Decision::drop(1.0);
                }
                if decision.action == Action::Mark {
                    debug_assert!(pkt.ecn.is_ect(), "AQM marked a Not-ECT packet");
                    pkt.ecn = Ecn::Ce;
                    self.stats.aqm_marked += 1;
                }
                self.qlen_bytes += pkt.size;
                self.stats.enqueued += 1;
                self.fifo.push_back((pkt, now));
                decision
            }
        }
    }

    /// Remove the head packet, whose transmission just completed at `now`.
    /// Returns the packet and its sojourn time (queueing + serialization).
    pub fn pop(&mut self, now: Time) -> Option<(Packet, Duration)> {
        let (pkt, enq_at) = self.fifo.pop_front()?;
        self.qlen_bytes -= pkt.size;
        let sojourn = now.saturating_since(enq_at);
        self.last_sojourn = Some(sojourn);
        self.stats.dequeued += 1;
        self.stats.dequeued_bytes += pkt.size as u64;
        let snap = self.snapshot();
        self.aqm.on_dequeue(&pkt, sojourn, &snap, now);
        Some((pkt, sojourn))
    }
}

impl Qdisc for BottleneckQueue {
    fn offer(&mut self, pkt: Packet, now: Time, rng: &mut Rng) -> Decision {
        BottleneckQueue::offer(self, pkt, now, rng)
    }
    fn pop(&mut self, now: Time) -> Option<(Packet, Duration)> {
        BottleneckQueue::pop(self, now)
    }
    fn head_size(&self) -> Option<usize> {
        BottleneckQueue::head_size(self)
    }
    fn len_bytes(&self) -> usize {
        BottleneckQueue::len_bytes(self)
    }
    fn len_pkts(&self) -> usize {
        BottleneckQueue::len_pkts(self)
    }
    fn rate_bps(&self) -> u64 {
        BottleneckQueue::rate_bps(self)
    }
    fn set_rate_bps(&mut self, rate_bps: u64) {
        BottleneckQueue::set_rate_bps(self, rate_bps)
    }
    fn update(&mut self, now: Time) {
        self.aqm_update(now)
    }
    fn update_interval(&self) -> Option<Duration> {
        self.aqm_update_interval()
    }
    fn control_variable(&self) -> f64 {
        self.aqm().control_variable()
    }
    fn probe(&self) -> AqmState {
        self.aqm().probe()
    }
    fn stats(&self) -> &QueueStats {
        &self.stats
    }
    fn save_ckpt(&self, w: &mut CkptWriter) {
        w.usize(self.fifo.len());
        for (pkt, enq_at) in &self.fifo {
            write_packet(w, pkt);
            w.time(*enq_at);
        }
        w.u64(self.rate_bps);
        w.bool(self.last_sojourn.is_some());
        w.duration(self.last_sojourn.unwrap_or(Duration::ZERO));
        w.u64(self.stats.enqueued);
        w.u64(self.stats.dequeued);
        w.u64(self.stats.dequeued_bytes);
        w.u64(self.stats.aqm_dropped);
        w.u64(self.stats.aqm_marked);
        w.u64(self.stats.overflowed);
        self.aqm.save_ckpt(w);
    }
    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let n = r.usize()?;
        self.fifo.clear();
        self.qlen_bytes = 0;
        for _ in 0..n {
            let pkt = read_packet(r)?;
            let enq_at = r.time()?;
            self.qlen_bytes += pkt.size;
            self.fifo.push_back((pkt, enq_at));
        }
        self.rate_bps = r.u64()?;
        if self.rate_bps == 0 {
            return Err(CkptError::Corrupt("restored link rate is zero"));
        }
        let has_sojourn = r.bool()?;
        let sojourn = r.duration()?;
        self.last_sojourn = has_sojourn.then_some(sojourn);
        self.stats.enqueued = r.u64()?;
        self.stats.dequeued = r.u64()?;
        self.stats.dequeued_bytes = r.u64()?;
        self.stats.aqm_dropped = r.u64()?;
        self.stats.aqm_marked = r.u64()?;
        self.stats.overflowed = r.u64()?;
        self.aqm.restore_ckpt(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aqm::PassAqm;
    use crate::packet::FlowId;

    fn queue(rate: u64, buf: usize) -> BottleneckQueue {
        BottleneckQueue::new(
            QueueConfig {
                rate_bps: rate,
                buffer_bytes: buf,
            },
            Box::new(PassAqm),
        )
    }

    fn pkt(seq: u64, size: usize) -> Packet {
        Packet::data(FlowId(0), seq, size, Ecn::NotEct, Time::ZERO)
    }

    #[test]
    fn fifo_order_preserved() {
        let mut q = queue(1_000_000, usize::MAX);
        let mut rng = Rng::new(1);
        for i in 0..5 {
            q.offer(pkt(i, 100), Time::from_millis(i), &mut rng);
        }
        for i in 0..5 {
            let (p, _) = q.pop(Time::from_millis(100)).unwrap();
            assert_eq!(p.seq, i);
        }
        assert!(q.pop(Time::from_millis(100)).is_none());
    }

    #[test]
    fn byte_accounting_is_exact() {
        let mut q = queue(1_000_000, usize::MAX);
        let mut rng = Rng::new(1);
        q.offer(pkt(0, 100), Time::ZERO, &mut rng);
        q.offer(pkt(1, 250), Time::ZERO, &mut rng);
        assert_eq!(q.len_bytes(), 350);
        assert_eq!(q.len_pkts(), 2);
        q.pop(Time::from_millis(1));
        assert_eq!(q.len_bytes(), 250);
        q.pop(Time::from_millis(2));
        assert_eq!(q.len_bytes(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_tail_drops() {
        let mut q = queue(1_000_000, 250);
        let mut rng = Rng::new(1);
        let d0 = q.offer(pkt(0, 200), Time::ZERO, &mut rng);
        assert_eq!(d0.action, Action::Pass);
        let d1 = q.offer(pkt(1, 100), Time::ZERO, &mut rng);
        assert_eq!(d1.action, Action::Drop);
        assert_eq!(q.stats.overflowed, 1);
        assert_eq!(q.len_pkts(), 1);
    }

    #[test]
    fn sojourn_measured_from_enqueue_to_pop() {
        let mut q = queue(1_000_000, usize::MAX);
        let mut rng = Rng::new(1);
        q.offer(pkt(0, 100), Time::from_millis(10), &mut rng);
        let (_, sojourn) = q.pop(Time::from_millis(35)).unwrap();
        assert_eq!(sojourn, Duration::from_millis(25));
        assert_eq!(q.snapshot().last_sojourn, Some(Duration::from_millis(25)));
    }

    #[test]
    fn rate_change_applies() {
        let mut q = queue(1_000_000, usize::MAX);
        q.set_rate_bps(2_000_000);
        assert_eq!(q.rate_bps(), 2_000_000);
        assert_eq!(q.snapshot().link_rate_bps, 2_000_000);
    }

    #[test]
    fn stats_count_enqueue_dequeue() {
        let mut q = queue(1_000_000, usize::MAX);
        let mut rng = Rng::new(1);
        q.offer(pkt(0, 100), Time::ZERO, &mut rng);
        q.offer(pkt(1, 100), Time::ZERO, &mut rng);
        q.pop(Time::from_millis(1));
        assert_eq!(q.stats.enqueued, 2);
        assert_eq!(q.stats.dequeued, 1);
        assert_eq!(q.stats.dequeued_bytes, 100);
    }

    /// An AQM that marks everything, to probe the mark/overflow interplay.
    struct MarkAlways;
    impl Aqm for MarkAlways {
        fn on_enqueue(
            &mut self,
            _pkt: &Packet,
            _snap: &QueueSnapshot,
            _now: Time,
            _rng: &mut Rng,
        ) -> crate::aqm::Decision {
            crate::aqm::Decision::mark(1.0)
        }
        fn name(&self) -> &'static str {
            "markalways"
        }
    }

    #[test]
    fn overflow_overrides_mark_decision() {
        // A Mark verdict on a full buffer must become an overflow drop,
        // never an admission.
        let mut q = BottleneckQueue::new(
            QueueConfig {
                rate_bps: 1_000_000,
                buffer_bytes: 1500,
            },
            Box::new(MarkAlways),
        );
        let mut rng = Rng::new(1);
        let mk = |seq| Packet::data(FlowId(0), seq, 1500, Ecn::Ect1, Time::ZERO);
        let d0 = q.offer(mk(0), Time::ZERO, &mut rng);
        assert_eq!(d0.action, Action::Mark);
        let d1 = q.offer(mk(1), Time::ZERO, &mut rng);
        assert_eq!(d1.action, Action::Drop);
        assert_eq!(d1.prob, 1.0);
        assert_eq!(q.stats.overflowed, 1);
        assert_eq!(q.stats.aqm_marked, 1, "the rejected packet is not counted as marked");
        // The admitted packet carries CE.
        let (pkt, _) = q.pop(Time::from_millis(20)).unwrap();
        assert_eq!(pkt.ecn, Ecn::Ce);
    }

    #[test]
    fn head_size_reports_next_packet() {
        let mut q = queue(1_000_000, usize::MAX);
        let mut rng = Rng::new(1);
        assert_eq!(q.head_size(), None);
        q.offer(pkt(0, 777), Time::ZERO, &mut rng);
        assert_eq!(q.head_size(), Some(777));
    }
}
