//! The simulator's metrics schema: which counters, gauges and histograms
//! a run records into a [`pi2_obs::Registry`].
//!
//! [`SimMetrics`] wraps a registry with typed handles for every
//! instrument the simulator updates, so the hot-path call sites compile
//! to an array index plus an add — no name lookups, no allocation. The
//! schema is fixed at construction, which is what makes per-worker
//! registries from the parallel sweep runner mergeable
//! ([`SimMetrics::merge`]) into a snapshot identical to a serial run's.
//!
//! Like every observer in this stack, metrics are write-only taps on
//! state the simulator already computes: recording never touches the
//! RNG, the queue or the event heap, so a metrics-on run is bit-identical
//! to a metrics-off run (asserted by `tests/metrics_obs.rs`).

use crate::aqm::AqmState;
use crate::packet::Ecn;
use pi2_obs::{CounterId, GaugeId, HistId, Registry};
use pi2_simcore::{CkptError, CkptReader, CkptWriter, Duration};

/// All instruments one simulation run records. See the module docs.
#[derive(Clone, Debug)]
pub struct SimMetrics {
    reg: Registry,
    enqueued: CounterId,
    dropped: CounterId,
    marked: CounterId,
    dequeued: CounterId,
    enq_ect: CounterId,
    enq_ce: CounterId,
    aqm_updates: CounterId,
    events_processed: CounterId,
    events_scheduled: CounterId,
    sojourn_ns: HistId,
    qdelay_ns: HistId,
    prob: GaugeId,
}

impl Default for SimMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl SimMetrics {
    /// Build the schema (the only allocations this type ever performs).
    pub fn new() -> Self {
        let mut reg = Registry::new();
        let enqueued = reg.counter("pi2_enqueued_total", "Packets admitted to the bottleneck queue");
        let dropped = reg.counter("pi2_dropped_total", "Packets dropped (AQM decision or overflow)");
        let marked = reg.counter("pi2_marked_total", "Packets CE-marked on admission");
        let dequeued = reg.counter("pi2_dequeued_total", "Packets that finished transmission");
        let enq_ect = reg.counter(
            "pi2_enqueued_ect_total",
            "Admitted packets that arrived ECN-capable (ECT(0)/ECT(1))",
        );
        let enq_ce = reg.counter("pi2_enqueued_ce_total", "Admitted packets carrying CE");
        let aqm_updates = reg.counter("pi2_aqm_updates_total", "Periodic AQM controller updates");
        let events_processed =
            reg.counter("pi2_events_processed_total", "Events popped by the dispatch loop");
        let events_scheduled =
            reg.counter("pi2_events_scheduled_total", "Events pushed onto the event queue");
        let sojourn_ns = reg.histogram(
            "pi2_sojourn_ns",
            "Per-packet queueing + serialization time at dequeue, nanoseconds",
        );
        let qdelay_ns = reg.histogram(
            "pi2_qdelay_ns",
            "Queue-delay input of each AQM controller update, nanoseconds",
        );
        let prob = reg.gauge("pi2_prob", "Classic output probability after the last AQM update");
        SimMetrics {
            reg,
            enqueued,
            dropped,
            marked,
            dequeued,
            enq_ect,
            enq_ce,
            aqm_updates,
            events_processed,
            events_scheduled,
            sojourn_ns,
            qdelay_ns,
            prob,
        }
    }

    /// A packet was admitted with ECN field `ecn` (post-marking).
    #[inline]
    pub fn note_enqueue(&mut self, ecn: Ecn) {
        self.reg.inc(self.enqueued, 1);
        match ecn {
            Ecn::NotEct => {}
            Ecn::Ce => self.reg.inc(self.enq_ce, 1),
            _ => self.reg.inc(self.enq_ect, 1),
        }
    }

    /// A packet was dropped.
    #[inline]
    pub fn note_drop(&mut self) {
        self.reg.inc(self.dropped, 1);
    }

    /// A packet was CE-marked on admission.
    #[inline]
    pub fn note_mark(&mut self) {
        self.reg.inc(self.marked, 1);
    }

    /// A packet finished transmission after queueing for `sojourn`.
    #[inline]
    pub fn note_dequeue(&mut self, sojourn: Duration) {
        self.reg.inc(self.dequeued, 1);
        self.reg.observe(self.sojourn_ns, sojourn.as_nanos().max(0) as u64);
    }

    /// The periodic AQM controller updated with this probed state.
    #[inline]
    pub fn note_aqm_update(&mut self, st: &AqmState) {
        self.reg.inc(self.aqm_updates, 1);
        self.reg.observe(self.qdelay_ns, st.qdelay.as_nanos().max(0) as u64);
        self.reg.set(self.prob, st.prob);
    }

    /// Fold the run's event-loop totals in (called when the metrics are
    /// detached from the sim, so intermediate snapshots are not
    /// double-counted).
    pub fn note_event_totals(&mut self, processed: u64, scheduled: u64) {
        self.reg.inc(self.events_processed, processed);
        self.reg.inc(self.events_scheduled, scheduled);
    }

    /// Fold another run's metrics into this one (deterministic when
    /// applied in a deterministic order; the parallel runner merges in
    /// item order).
    pub fn merge(&mut self, other: &SimMetrics) {
        self.reg.merge(&other.reg);
    }

    /// The underlying registry, for exporters.
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Packets admitted.
    pub fn enqueued(&self) -> u64 {
        self.reg.counter_value(self.enqueued)
    }

    /// Packets dropped.
    pub fn dropped(&self) -> u64 {
        self.reg.counter_value(self.dropped)
    }

    /// Packets CE-marked.
    pub fn marked(&self) -> u64 {
        self.reg.counter_value(self.marked)
    }

    /// Packets dequeued.
    pub fn dequeued(&self) -> u64 {
        self.reg.counter_value(self.dequeued)
    }

    /// AQM controller updates.
    pub fn aqm_updates(&self) -> u64 {
        self.reg.counter_value(self.aqm_updates)
    }

    /// Events popped by the dispatch loop.
    pub fn events_processed(&self) -> u64 {
        self.reg.counter_value(self.events_processed)
    }

    /// The sojourn-time histogram (nanoseconds).
    pub fn sojourn(&self) -> &pi2_obs::Histogram {
        self.reg.hist(self.sojourn_ns)
    }

    /// The AQM queue-delay histogram (nanoseconds).
    pub fn qdelay(&self) -> &pi2_obs::Histogram {
        self.reg.hist(self.qdelay_ns)
    }

    /// Serialize every instrument's value in registry order
    /// (checkpointing). The schema itself is fixed at construction, so
    /// only values are written: counters, then gauges, then histograms
    /// (sparse non-zero buckets plus raw moments).
    pub fn save_ckpt(&self, w: &mut CkptWriter) {
        let (nc, ng, nh) = self.reg.instrument_counts();
        w.usize(nc);
        for i in 0..nc {
            w.u64(self.reg.counter_at(i));
        }
        w.usize(ng);
        for i in 0..ng {
            w.f64(self.reg.gauge_at(i));
        }
        w.usize(nh);
        for i in 0..nh {
            let h = self.reg.hist_at(i);
            let buckets = h.bucket_counts();
            let nonzero = buckets.iter().filter(|&&c| c != 0).count();
            w.usize(nonzero);
            for (idx, &c) in buckets.iter().enumerate() {
                if c != 0 {
                    w.usize(idx);
                    w.u64(c);
                }
            }
            let (count, sum, sum_sq, min_raw, max) = h.raw_moments();
            w.u64(count);
            w.u64(sum);
            w.f64(sum_sq);
            w.u64(min_raw);
            w.u64(max);
        }
    }

    /// Restore values captured by [`SimMetrics::save_ckpt`] into a
    /// freshly constructed (same-schema) instance.
    pub fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let (nc, ng, nh) = self.reg.instrument_counts();
        if r.usize()? != nc {
            return Err(CkptError::Corrupt("metrics counter count mismatch"));
        }
        for i in 0..nc {
            let v = r.u64()?;
            self.reg.set_counter_at(i, v);
        }
        if r.usize()? != ng {
            return Err(CkptError::Corrupt("metrics gauge count mismatch"));
        }
        for i in 0..ng {
            let v = r.f64()?;
            self.reg.set_gauge_at(i, v);
        }
        if r.usize()? != nh {
            return Err(CkptError::Corrupt("metrics histogram count mismatch"));
        }
        for i in 0..nh {
            let nonzero = r.usize()?;
            let mut pairs = Vec::with_capacity(nonzero);
            for _ in 0..nonzero {
                let idx = r.usize()?;
                let c = r.u64()?;
                if idx >= pi2_obs::HIST_BUCKETS {
                    return Err(CkptError::Corrupt("histogram bucket index out of range"));
                }
                pairs.push((idx, c));
            }
            let count = r.u64()?;
            let sum = r.u64()?;
            let sum_sq = r.f64()?;
            let min_raw = r.u64()?;
            let max = r.u64()?;
            self.reg
                .hist_at_mut(i)
                .restore_raw(pairs, count, sum, sum_sq, min_raw, max);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_simcore::Time;

    #[test]
    fn counts_route_to_the_right_instruments() {
        let mut m = SimMetrics::new();
        m.note_enqueue(Ecn::NotEct);
        m.note_enqueue(Ecn::Ce);
        m.note_mark();
        m.note_drop();
        m.note_dequeue(Duration::from_millis(3));
        m.note_aqm_update(&AqmState {
            prob: 0.04,
            qdelay: Duration::from_millis(15),
            ..AqmState::default()
        });
        m.note_event_totals(100, 120);
        assert_eq!(m.enqueued(), 2);
        assert_eq!(m.marked(), 1);
        assert_eq!(m.dropped(), 1);
        assert_eq!(m.dequeued(), 1);
        assert_eq!(m.aqm_updates(), 1);
        assert_eq!(m.events_processed(), 100);
        assert_eq!(m.sojourn().count(), 1);
        assert_eq!(m.qdelay().count(), 1);
        // Histogram quantile error ≤ 1/32 of the value.
        let p50 = m.sojourn().quantile(0.5);
        assert!((3_000_000..=3_100_000).contains(&p50), "{p50}");
        let _ = Time::ZERO; // silence unused import on feature subsets
    }

    #[test]
    fn merge_is_schema_safe_and_additive() {
        let mut a = SimMetrics::new();
        let mut b = SimMetrics::new();
        a.note_enqueue(Ecn::Ect0);
        b.note_enqueue(Ecn::Ect0);
        b.note_drop();
        a.merge(&b);
        assert_eq!(a.enqueued(), 2);
        assert_eq!(a.dropped(), 1);
    }

    #[test]
    fn exports_lint_clean() {
        let mut m = SimMetrics::new();
        m.note_enqueue(Ecn::NotEct);
        m.note_dequeue(Duration::from_micros(80));
        let prom = m.registry().to_prometheus();
        pi2_obs::prom_lint(&prom).expect("schema must produce lintable exposition text");
        let json = m.registry().to_json();
        assert!(json.contains("\"pi2_enqueued_total\":1"));
    }
}
