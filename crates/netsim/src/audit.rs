//! Runtime invariant auditor: an always-compilable observer that checks
//! the simulator's global bookkeeping on every trace event and AQM probe,
//! and panics with a **replayable seed** the moment an invariant breaks.
//!
//! The auditor is wired into [`crate::sim::SimCore`] as a debug-default
//! observer (see `PI2_AUDIT` in [`crate::sim::Sim::with_qdisc`]): debug
//! builds audit every run unless `PI2_AUDIT=0`, release builds audit only
//! when `PI2_AUDIT=1` or `--audit`/`enable_audit` asks for it. It is a
//! pure observer — it never touches the RNG, the queue, or the event heap
//! — so an audited run is bit-identical to an unaudited one.
//!
//! Invariants checked, mirroring the paper's accounting assumptions:
//!
//! * **monotone virtual clock** — event and probe timestamps never go
//!   backwards;
//! * **probability bounds** — every per-packet decision probability and
//!   every probed `p'`, `p`, scalable `p` is finite and in `[0, 1]`;
//! * **squaring law** — on PI2 paths (opt-in via
//!   [`AuditSink::expect_squared`]) each probe satisfies
//!   `p = min(p'², cap)`, the paper's Section 3 coupling;
//! * **non-negative queue depth** — admissions minus departures never go
//!   below zero, globally and per flow;
//! * **conservation** — at end of run, `enqueued − dequeued` equals the
//!   packets still queued ([`AuditSink::check_conservation`], called by
//!   `Sim::run_until`).

//! ## Flight recorder
//!
//! Alongside the seed, every auditor keeps a fixed-capacity ring buffer
//! of the most recent trace events (the **flight recorder**,
//! [`pi2_obs::RingBuffer`]). When a violation fires, the retained window
//! — the last [`DEFAULT_FLIGHT_CAPACITY`] events leading up to the
//! failure — is dumped as JSONL to `PI2_FLIGHT_OUT` (or a seed-stamped
//! file in the system temp directory) and the dump path is embedded in
//! the panic message, so a broken invariant leaves both a replay recipe
//! and the immediate evidence.

use crate::aqm::AqmState;
use crate::impair::ImpairStats;
use crate::trace::{TraceCounts, TraceEvent, TraceSink};
use pi2_obs::RingBuffer;
use pi2_simcore::{Duration, Time};

/// Slack for floating-point identity checks (the squaring law is computed
/// in one multiply, so this only absorbs cross-platform rounding).
const EPS: f64 = 1e-9;

/// Trace events the flight recorder retains (see the module docs).
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// The invariant-checking trace sink. See the module docs for the
/// invariant list.
#[derive(Debug)]
pub struct AuditSink {
    /// The run's RNG seed, embedded in every violation panic so the run
    /// can be replayed bit-identically.
    seed: u64,
    /// Short context string for violation messages (e.g. the AQM name).
    label: String,
    /// When set, every AQM probe must satisfy `prob = min(p_prime², cap)`
    /// with `cap` the configured classic-probability ceiling.
    squared_cap: Option<f64>,
    /// Packets already in the qdisc when the auditor attached; only an
    /// attach-at-time-zero auditor (baseline 0) can check per-flow
    /// dequeue ≤ enqueue strictly.
    baseline_pkts: u64,
    /// Independent event accounting (separate instance from the
    /// simulator's own always-on counters).
    counts: TraceCounts,
    /// Running queue depth implied by the event stream.
    qlen_pkts: i64,
    last_event_t: Time,
    last_probe_t: Time,
    events_seen: u64,
    probes_seen: u64,
    /// The most recent trace events, dumped on violation (see the module
    /// docs).
    flight: RingBuffer<TraceEvent>,
}

impl AuditSink {
    /// An auditor for a run driven by `seed`.
    pub fn new(seed: u64) -> Self {
        AuditSink {
            seed,
            label: String::new(),
            squared_cap: None,
            baseline_pkts: 0,
            counts: TraceCounts::new(),
            qlen_pkts: 0,
            last_event_t: Time::ZERO,
            last_probe_t: Time::ZERO,
            events_seen: 0,
            probes_seen: 0,
            flight: RingBuffer::new(DEFAULT_FLIGHT_CAPACITY),
        }
    }

    /// Resize the flight recorder (discards anything already retained).
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn with_flight_capacity(mut self, capacity: usize) -> Self {
        self.flight = RingBuffer::new(capacity);
        self
    }

    /// The flight recorder's retained events, oldest first.
    pub fn flight_events(&self) -> Vec<TraceEvent> {
        self.flight.iter().copied().collect()
    }

    /// Attach a context label used in violation messages.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }

    /// Require the PI2 squaring law `prob = min(p_prime², cap)` on every
    /// probe. Use the AQM's configured `max_classic_prob` as `cap`
    /// (0.25 for the paper's defaults).
    pub fn expect_squared(mut self, cap: f64) -> Self {
        self.squared_cap = Some(cap);
        self
    }

    /// Tell the auditor how many packets were already queued when it
    /// attached (a mid-run attach); those departures are not violations.
    pub fn set_baseline_pkts(&mut self, pkts: usize) {
        self.baseline_pkts = pkts as u64;
        self.qlen_pkts = pkts as i64;
    }

    /// Events observed so far (for "the auditor actually ran" assertions).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// AQM probes observed so far.
    pub fn probes_seen(&self) -> u64 {
        self.probes_seen
    }

    /// The auditor's independent per-flow accounting.
    pub fn counts(&self) -> &TraceCounts {
        &self.counts
    }

    /// Write the flight-recorder window as JSONL (one trace event per
    /// line, oldest first, closed by a `"ev":"violation"` context record)
    /// to `PI2_FLIGHT_OUT` or a seed-stamped temp file. Returns the path,
    /// or `None` when there is nothing retained or the write failed (a
    /// failed dump must never mask the violation itself).
    fn dump_flight(&self, t: Time) -> Option<std::path::PathBuf> {
        if self.flight.is_empty() {
            return None;
        }
        let path = match std::env::var_os("PI2_FLIGHT_OUT") {
            Some(p) => std::path::PathBuf::from(p),
            None => std::env::temp_dir().join(format!("pi2_flight_seed{}.jsonl", self.seed)),
        };
        let mut body = String::new();
        for ev in self.flight.iter() {
            body.push_str(&ev.jsonl());
            body.push('\n');
        }
        body.push_str(&format!(
            "{{\"ev\":\"violation\",\"t_ns\":{},\"seed\":{},\"events_seen\":{},\
             \"probes_seen\":{},\"ring_evicted\":{}}}\n",
            t.as_nanos(),
            self.seed,
            self.events_seen,
            self.probes_seen,
            self.flight.total_pushed() - self.flight.len() as u64,
        ));
        std::fs::write(&path, body).ok().map(|_| path)
    }

    fn violation(&self, t: Time, what: &str) -> ! {
        let label = if self.label.is_empty() { "" } else { &self.label };
        let flight = match self.dump_flight(t) {
            Some(p) => format!(
                "\n  flight recorder: last {} trace events dumped to {}",
                self.flight.len(),
                p.display()
            ),
            None => String::new(),
        };
        panic!(
            "audit[{label}] INVARIANT VIOLATION at t={t} (after {} events, {} probes): {what}\n  \
             replayable seed: {seed} — rerun the identical scenario with seed {seed} to \
             reproduce this bit-for-bit{flight}",
            self.events_seen,
            self.probes_seen,
            seed = self.seed,
        );
    }

    fn check_prob(&self, t: Time, name: &str, p: f64) {
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            self.violation(t, &format!("{name} = {p} outside [0, 1]"));
        }
    }

    /// End-of-run conservation: every admitted packet was either dequeued
    /// or is still sitting in the qdisc. `Sim::run_until` calls this with
    /// the qdisc's current occupancy after the event loop drains.
    pub fn check_conservation(&self, qlen_pkts: usize, now: Time) {
        let t = self.counts.totals();
        let expected = self.baseline_pkts + t.enqueued - t.dequeued;
        if expected != qlen_pkts as u64 {
            self.violation(
                now,
                &format!(
                    "conservation broken: {} enqueued − {} dequeued (+{} baseline) \
                     implies {} packets queued, but the qdisc holds {}",
                    t.enqueued, t.dequeued, self.baseline_pkts, expected, qlen_pkts
                ),
            );
        }
        // Strict per-flow accounting is only sound when nothing predates
        // the auditor.
        if self.baseline_pkts == 0 {
            for (i, f) in self.counts.flows().iter().enumerate() {
                if f.dequeued > f.enqueued {
                    self.violation(
                        now,
                        &format!(
                            "flow {i}: {} dequeued but only {} enqueued",
                            f.dequeued, f.enqueued
                        ),
                    );
                }
            }
        }
    }

    /// Per-hop conservation for the extra hops of a multi-hop topology:
    /// the core's independently counted admissions minus departures must
    /// equal the hop qdisc's current occupancy. Called by
    /// `SimCore::finish_audit` for every hop past the primary bottleneck
    /// (hop 0 is covered by the trace-stream check above).
    pub fn check_hop_conservation(
        &self,
        hop: u32,
        enqueued: u64,
        dequeued: u64,
        qlen_pkts: usize,
        now: Time,
    ) {
        if dequeued > enqueued {
            self.violation(
                now,
                &format!("hop {hop}: {dequeued} dequeued but only {enqueued} admissions"),
            );
        }
        if enqueued - dequeued != qlen_pkts as u64 {
            self.violation(
                now,
                &format!(
                    "hop {hop} conservation broken: {enqueued} enqueued − {dequeued} dequeued \
                     implies {} packets queued, but the hop qdisc holds {qlen_pkts}",
                    enqueued - dequeued
                ),
            );
        }
    }

    /// The internal-balance half of [`AuditSink::check_impairments`]:
    /// each direction of the impairment layer must satisfy
    /// `lost + passed = offered`. Used on its own for multi-hop runs,
    /// where the dequeue cross-check against the primary bottleneck's
    /// trace stream no longer applies (final-leg departures happen at
    /// each route's last hop).
    pub fn check_impairments_balance(&self, stats: &ImpairStats, now: Time) {
        if stats.fwd_lost + stats.fwd_passed() != stats.fwd_offered {
            self.violation(
                now,
                &format!(
                    "impairment fwd accounting broken: {} lost + {} passed != {} offered",
                    stats.fwd_lost,
                    stats.fwd_passed(),
                    stats.fwd_offered
                ),
            );
        }
        if stats.rev_lost + stats.rev_passed() != stats.rev_offered {
            self.violation(
                now,
                &format!(
                    "impairment rev accounting broken: {} lost + {} passed != {} offered",
                    stats.rev_lost,
                    stats.rev_passed(),
                    stats.rev_offered
                ),
            );
        }
    }

    /// Path-conservation cross-check for the impairment layer (see
    /// [`crate::impair`]): every dequeued packet must have received
    /// exactly one forward verdict, and each direction's internal
    /// accounting must balance (`lost + passed = offered`). Called by
    /// `SimCore::finish_audit` when the layer is attached. The dequeue
    /// cross-check needs both observers attached from the start of the
    /// run, so it is skipped for mid-run attaches (non-zero baseline).
    pub fn check_impairments(&self, stats: &ImpairStats, now: Time) {
        self.check_impairments_balance(stats, now);
        let dequeued = self.counts.totals().dequeued;
        if self.baseline_pkts == 0 && stats.fwd_offered != dequeued {
            self.violation(
                now,
                &format!(
                    "impairment layer saw {} forward packets but {} were dequeued — \
                     a packet left the bottleneck without a path verdict",
                    stats.fwd_offered, dequeued
                ),
            );
        }
    }
}

impl TraceSink for AuditSink {
    fn on_event(&mut self, ev: &TraceEvent) {
        // Record before checking so a violating event is itself the last
        // line of the flight-recorder dump.
        self.flight.push(*ev);
        let t = ev.time();
        if t < self.last_event_t {
            self.violation(
                t,
                &format!("virtual clock went backwards (previous event at {})", self.last_event_t),
            );
        }
        self.last_event_t = t;
        self.events_seen += 1;
        match ev {
            TraceEvent::Enqueue { .. } => {
                self.qlen_pkts += 1;
            }
            TraceEvent::Mark { prob, .. } => {
                // The matching admission arrives as a separate Enqueue
                // event (the Mark ⇒ Enqueue contract); only the
                // probability is checked here.
                self.check_prob(t, "mark probability", *prob);
            }
            TraceEvent::Drop { prob, .. } => {
                self.check_prob(t, "drop probability", *prob);
            }
            TraceEvent::Dequeue { flow, sojourn, .. } => {
                if *sojourn < Duration::ZERO {
                    self.violation(t, &format!("negative sojourn {sojourn} on flow {}", flow.idx()));
                }
                self.qlen_pkts -= 1;
                if self.qlen_pkts < 0 {
                    self.violation(t, "queue depth went negative (dequeue with nothing queued)");
                }
                if self.baseline_pkts == 0 {
                    let f = self.counts.flow(*flow);
                    // This event is counted below, so compare with ≥.
                    if f.dequeued >= f.enqueued {
                        self.violation(
                            t,
                            &format!(
                                "flow {}: dequeue #{} but only {} admissions",
                                flow.idx(),
                                f.dequeued + 1,
                                f.enqueued
                            ),
                        );
                    }
                }
            }
        }
        self.counts.count(ev);
    }

    fn on_aqm_state(&mut self, t: Time, st: &AqmState) {
        if t < self.last_probe_t {
            self.violation(
                t,
                &format!("AQM probe clock went backwards (previous probe at {})", self.last_probe_t),
            );
        }
        self.last_probe_t = t;
        self.probes_seen += 1;
        self.check_prob(t, "p_prime", st.p_prime);
        self.check_prob(t, "prob", st.prob);
        self.check_prob(t, "scalable_prob", st.scalable_prob);
        for (name, v) in [("alpha_term", st.alpha_term), ("beta_term", st.beta_term)] {
            if !v.is_finite() {
                self.violation(t, &format!("{name} = {v} is not finite"));
            }
        }
        if !st.est_rate_bytes_per_sec.is_finite() || st.est_rate_bytes_per_sec < 0.0 {
            self.violation(
                t,
                &format!("estimated departure rate {} is negative", st.est_rate_bytes_per_sec),
            );
        }
        if st.qdelay < Duration::ZERO {
            self.violation(t, &format!("negative probed queue delay {}", st.qdelay));
        }
        if st.burst_allowance < Duration::ZERO {
            self.violation(t, &format!("negative burst allowance {}", st.burst_allowance));
        }
        if let Some(cap) = self.squared_cap {
            let want = (st.p_prime * st.p_prime).min(cap);
            if (st.prob - want).abs() > EPS {
                self.violation(
                    t,
                    &format!(
                        "squaring law broken: prob = {} but min(p_prime², cap) = \
                         min({}², {cap}) = {want}",
                        st.prob, st.p_prime
                    ),
                );
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Ecn, FlowId};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn enq(t: u64, flow: u32, seq: u64) -> TraceEvent {
        TraceEvent::Enqueue {
            t: Time::from_millis(t),
            flow: FlowId(flow),
            seq,
            ecn: Ecn::NotEct,
        }
    }

    fn deq(t: u64, flow: u32, seq: u64) -> TraceEvent {
        TraceEvent::Dequeue {
            t: Time::from_millis(t),
            flow: FlowId(flow),
            seq,
            sojourn: Duration::from_millis(1),
        }
    }

    fn panic_message(r: std::thread::Result<()>) -> String {
        let err = r.expect_err("auditor should have panicked");
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("string panic payload")
    }

    #[test]
    fn clean_stream_passes_and_conserves() {
        let mut a = AuditSink::new(7).with_label("test");
        a.on_event(&enq(1, 0, 0));
        a.on_event(&enq(2, 1, 0));
        a.on_event(&deq(3, 0, 0));
        a.check_conservation(1, Time::from_millis(3));
        assert_eq!(a.events_seen(), 3);
    }

    #[test]
    fn corrupted_counter_is_caught_with_a_replayable_seed() {
        // The seeded fault: a dequeue for a flow whose admission counter
        // never saw the packet — exactly what a corrupted counter or a
        // double-pop bug would produce.
        let seed = 0xDECAF_u64;
        let mut a = AuditSink::new(seed).with_label("pi2");
        a.on_event(&enq(1, 0, 0));
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            a.on_event(&deq(2, 1, 0)); // flow 1 never enqueued anything
        })));
        assert!(msg.contains("INVARIANT VIOLATION"), "{msg}");
        assert!(msg.contains(&format!("seed: {seed}")), "seed must be replayable: {msg}");
        assert!(msg.contains("flow 1"), "{msg}");
    }

    #[test]
    fn backwards_clock_is_a_violation() {
        let mut a = AuditSink::new(3);
        a.on_event(&enq(5, 0, 0));
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            a.on_event(&enq(4, 0, 1));
        })));
        assert!(msg.contains("clock went backwards"), "{msg}");
    }

    #[test]
    fn out_of_range_probability_is_a_violation() {
        let mut a = AuditSink::new(3);
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            a.on_event(&TraceEvent::Drop {
                t: Time::ZERO,
                flow: FlowId(0),
                seq: 0,
                prob: 1.5,
            });
        })));
        assert!(msg.contains("outside [0, 1]"), "{msg}");
    }

    #[test]
    fn squaring_law_is_enforced_when_requested() {
        let mut a = AuditSink::new(3).expect_squared(0.25);
        let good = AqmState {
            p_prime: 0.3,
            prob: 0.09,
            ..AqmState::default()
        };
        a.on_aqm_state(Time::from_millis(32), &good);
        // Above the cap the applied probability must saturate at it.
        let capped = AqmState {
            p_prime: 0.9,
            prob: 0.25,
            ..AqmState::default()
        };
        a.on_aqm_state(Time::from_millis(64), &capped);
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            let bad = AqmState {
                p_prime: 0.3,
                prob: 0.3, // linear, not squared: a PIE probe on a PI2 path
                ..AqmState::default()
            };
            a.on_aqm_state(Time::from_millis(96), &bad);
        })));
        assert!(msg.contains("squaring law broken"), "{msg}");
    }

    #[test]
    fn conservation_mismatch_is_a_violation() {
        let mut a = AuditSink::new(11);
        a.on_event(&enq(1, 0, 0));
        a.on_event(&enq(1, 0, 1));
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            // Claim the queue is empty while two packets are unaccounted.
            a.check_conservation(0, Time::from_millis(2));
        })));
        assert!(msg.contains("conservation broken"), "{msg}");
        assert!(msg.contains("seed: 11"), "{msg}");
    }

    #[test]
    fn negative_queue_depth_is_a_violation() {
        let mut a = AuditSink::new(3);
        a.set_baseline_pkts(0);
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            a.on_event(&deq(1, 0, 0));
        })));
        // Per-flow admission accounting trips first (a dequeue with no
        // admission) — both phrasings describe the same corruption.
        assert!(
            msg.contains("only 0 admissions") || msg.contains("queue depth went negative"),
            "{msg}"
        );
    }

    #[test]
    fn flight_recorder_wraps_and_keeps_the_newest_window() {
        let mut a = AuditSink::new(21).with_flight_capacity(4);
        for seq in 0..10 {
            a.on_event(&enq(seq + 1, 0, seq));
        }
        let kept = a.flight_events();
        assert_eq!(kept.len(), 4, "ring must cap at its capacity");
        let seqs: Vec<u64> = kept
            .iter()
            .map(|e| match e {
                TraceEvent::Enqueue { seq, .. } => *seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted, order preserved");
    }

    #[test]
    fn violation_dumps_the_flight_recorder_as_jsonl() {
        // Unique seed → unique default dump path, so this test needs no
        // env mutation (which would race parallel tests).
        let seed = 0xF11_887_u64;
        let path = std::env::temp_dir().join(format!("pi2_flight_seed{seed}.jsonl"));
        let _ = std::fs::remove_file(&path);
        let mut a = AuditSink::new(seed).with_flight_capacity(8);
        a.on_event(&enq(1, 0, 0));
        a.on_event(&enq(2, 0, 1));
        let msg = panic_message(catch_unwind(AssertUnwindSafe(|| {
            a.on_event(&deq(3, 1, 0)); // flow 1 never enqueued anything
        })));
        assert!(msg.contains("flight recorder"), "{msg}");
        assert!(msg.contains(&path.display().to_string()), "{msg}");
        let dump = std::fs::read_to_string(&path).expect("dump file must exist");
        let lines: Vec<&str> = dump.lines().collect();
        // Two enqueues + the violating dequeue + the context record.
        assert_eq!(lines.len(), 4, "{dump}");
        assert!(lines[0].contains("\"ev\":\"enq\""));
        assert!(lines[2].contains("\"ev\":\"deq\""), "violating event is last");
        assert!(lines[3].contains("\"ev\":\"violation\""));
        assert!(lines[3].contains(&format!("\"seed\":{seed}")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_run_attach_uses_its_baseline() {
        let mut a = AuditSink::new(5);
        a.set_baseline_pkts(2); // two packets predate the auditor
        a.on_event(&deq(1, 0, 0));
        a.on_event(&deq(2, 0, 1));
        a.check_conservation(0, Time::from_millis(3));
    }
}
