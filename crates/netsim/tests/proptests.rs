//! Property-based tests for the packet-level substrate.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_netsim::{
    Action, Aqm, BottleneckQueue, Decision, Ecn, FlowId, Packet, PassAqm, QueueConfig,
    QueueSnapshot,
};
use pi2_simcore::{Duration, Rng, Time};
use proptest::prelude::*;

fn arb_ecn() -> impl Strategy<Value = Ecn> {
    prop_oneof![
        Just(Ecn::NotEct),
        Just(Ecn::Ect0),
        Just(Ecn::Ect1),
        Just(Ecn::Ce),
    ]
}

proptest! {
    /// Byte and packet accounting is exact under arbitrary offer/pop
    /// interleavings, and FIFO order is preserved.
    #[test]
    fn queue_accounting_invariant(
        ops in prop::collection::vec((any::<bool>(), 40usize..2000, arb_ecn()), 1..300),
        seed in any::<u64>(),
    ) {
        let mut q = BottleneckQueue::new(
            QueueConfig { rate_bps: 10_000_000, buffer_bytes: 100_000 },
            Box::new(PassAqm),
        );
        let mut rng = Rng::new(seed);
        let mut model: std::collections::VecDeque<(u64, usize)> = Default::default();
        let mut bytes = 0usize;
        let mut seq = 0u64;
        let mut t = Time::ZERO;
        for (push, size, ecn) in ops {
            t += Duration::from_micros(100);
            if push {
                let d = q.offer(Packet::data(FlowId(0), seq, size, ecn, t), t, &mut rng);
                match d.action {
                    Action::Pass | Action::Mark => {
                        model.push_back((seq, size));
                        bytes += size;
                    }
                    Action::Drop => {
                        // Only overflow can drop under PassAqm.
                        prop_assert!(bytes + size > 100_000);
                    }
                }
                seq += 1;
            } else if let Some((pkt, sojourn)) = q.pop(t) {
                let (mseq, msize) = model.pop_front().unwrap();
                prop_assert_eq!(pkt.seq, mseq);
                prop_assert_eq!(pkt.size, msize);
                prop_assert!(sojourn >= Duration::ZERO);
                bytes -= msize;
            }
            prop_assert_eq!(q.len_bytes(), bytes);
            prop_assert_eq!(q.len_pkts(), model.len());
        }
    }

    /// The queue never exceeds its byte limit, whatever is thrown at it.
    #[test]
    fn buffer_limit_never_exceeded(
        sizes in prop::collection::vec(40usize..3000, 1..200),
        limit in 5_000usize..50_000,
        seed in any::<u64>(),
    ) {
        let mut q = BottleneckQueue::new(
            QueueConfig { rate_bps: 1_000_000, buffer_bytes: limit },
            Box::new(PassAqm),
        );
        let mut rng = Rng::new(seed);
        for (i, size) in sizes.iter().enumerate() {
            q.offer(
                Packet::data(FlowId(0), i as u64, *size, Ecn::NotEct, Time::ZERO),
                Time::ZERO,
                &mut rng,
            );
            prop_assert!(q.len_bytes() <= limit);
        }
    }

    /// Snapshot fields are consistent with the queue's own accessors.
    #[test]
    fn snapshot_consistency(sizes in prop::collection::vec(100usize..1500, 0..50)) {
        let mut q = BottleneckQueue::new(QueueConfig::default(), Box::new(PassAqm));
        let mut rng = Rng::new(1);
        for (i, size) in sizes.iter().enumerate() {
            q.offer(
                Packet::data(FlowId(0), i as u64, *size, Ecn::NotEct, Time::ZERO),
                Time::ZERO,
                &mut rng,
            );
        }
        let s = q.snapshot();
        prop_assert_eq!(s.qlen_bytes, q.len_bytes());
        prop_assert_eq!(s.qlen_pkts, q.len_pkts());
        prop_assert_eq!(s.link_rate_bps, q.rate_bps());
    }
}

/// A probabilistic AQM for decision-frequency checks.
struct FixedP(f64);
impl Aqm for FixedP {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        _snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        if rng.chance(self.0) {
            if pkt.ecn.is_ect() {
                Decision::mark(self.0)
            } else {
                Decision::drop(self.0)
            }
        } else {
            Decision::pass(self.0)
        }
    }
    fn name(&self) -> &'static str {
        "fixedp"
    }
}

proptest! {
    /// Marks only ever touch ECT packets; drops only Not-ECT (for an AQM
    /// following the mark-if-possible convention), and CE-marking
    /// rewrites the field to CE.
    #[test]
    fn mark_rewrites_to_ce(p in 0.1f64..0.9, seed in any::<u64>(), ecn in arb_ecn()) {
        let mut q = BottleneckQueue::new(QueueConfig::default(), Box::new(FixedP(p)));
        let mut rng = Rng::new(seed);
        for i in 0..100u64 {
            let d = q.offer(
                Packet::data(FlowId(0), i, 1500, ecn, Time::ZERO),
                Time::ZERO,
                &mut rng,
            );
            match d.action {
                Action::Mark => prop_assert!(ecn.is_ect()),
                Action::Drop => prop_assert!(!ecn.is_ect()),
                Action::Pass => {}
            }
        }
        // Everything admitted after a Mark decision must carry CE.
        let mut t = Time::ZERO;
        while let Some((pkt, _)) = q.pop(t) {
            t += Duration::from_micros(1);
            if ecn.is_ect() {
                prop_assert!(pkt.ecn == Ecn::Ce || pkt.ecn == ecn);
            } else {
                prop_assert_eq!(pkt.ecn, Ecn::NotEct);
            }
        }
    }
}
