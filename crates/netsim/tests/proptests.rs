//! Property-based tests for the packet-level substrate.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_netsim::{
    Action, Aqm, AuditSink, BottleneckQueue, Decision, Ecn, FlowId, ImpairStats, ImpairmentConf,
    LinkImpairments, MonitorConfig, Packet, PassAqm, PathConf, Qdisc, QueueConfig, QueueSnapshot,
    Sim, SimConfig, UdpCbrSource,
};
use pi2_simcore::{Duration, Rng, Time};
use proptest::prelude::*;

fn arb_ecn() -> impl Strategy<Value = Ecn> {
    prop_oneof![
        Just(Ecn::NotEct),
        Just(Ecn::Ect0),
        Just(Ecn::Ect1),
        Just(Ecn::Ce),
    ]
}

proptest! {
    /// Byte and packet accounting is exact under arbitrary offer/pop
    /// interleavings, and FIFO order is preserved.
    #[test]
    fn queue_accounting_invariant(
        ops in prop::collection::vec((any::<bool>(), 40usize..2000, arb_ecn()), 1..300),
        seed in any::<u64>(),
    ) {
        let mut q = BottleneckQueue::new(
            QueueConfig { rate_bps: 10_000_000, buffer_bytes: 100_000 },
            Box::new(PassAqm),
        );
        let mut rng = Rng::new(seed);
        let mut model: std::collections::VecDeque<(u64, usize)> = Default::default();
        let mut bytes = 0usize;
        let mut seq = 0u64;
        let mut t = Time::ZERO;
        for (push, size, ecn) in ops {
            t += Duration::from_micros(100);
            if push {
                let d = q.offer(Packet::data(FlowId(0), seq, size, ecn, t), t, &mut rng);
                match d.action {
                    Action::Pass | Action::Mark => {
                        model.push_back((seq, size));
                        bytes += size;
                    }
                    Action::Drop => {
                        // Only overflow can drop under PassAqm.
                        prop_assert!(bytes + size > 100_000);
                    }
                }
                seq += 1;
            } else if let Some((pkt, sojourn)) = q.pop(t) {
                let (mseq, msize) = model.pop_front().unwrap();
                prop_assert_eq!(pkt.seq, mseq);
                prop_assert_eq!(pkt.size, msize);
                prop_assert!(sojourn >= Duration::ZERO);
                bytes -= msize;
            }
            prop_assert_eq!(q.len_bytes(), bytes);
            prop_assert_eq!(q.len_pkts(), model.len());
        }
    }

    /// The queue never exceeds its byte limit, whatever is thrown at it.
    #[test]
    fn buffer_limit_never_exceeded(
        sizes in prop::collection::vec(40usize..3000, 1..200),
        limit in 5_000usize..50_000,
        seed in any::<u64>(),
    ) {
        let mut q = BottleneckQueue::new(
            QueueConfig { rate_bps: 1_000_000, buffer_bytes: limit },
            Box::new(PassAqm),
        );
        let mut rng = Rng::new(seed);
        for (i, size) in sizes.iter().enumerate() {
            q.offer(
                Packet::data(FlowId(0), i as u64, *size, Ecn::NotEct, Time::ZERO),
                Time::ZERO,
                &mut rng,
            );
            prop_assert!(q.len_bytes() <= limit);
        }
    }

    /// Snapshot fields are consistent with the queue's own accessors.
    #[test]
    fn snapshot_consistency(sizes in prop::collection::vec(100usize..1500, 0..50)) {
        let mut q = BottleneckQueue::new(QueueConfig::default(), Box::new(PassAqm));
        let mut rng = Rng::new(1);
        for (i, size) in sizes.iter().enumerate() {
            q.offer(
                Packet::data(FlowId(0), i as u64, *size, Ecn::NotEct, Time::ZERO),
                Time::ZERO,
                &mut rng,
            );
        }
        let s = q.snapshot();
        prop_assert_eq!(s.qlen_bytes, q.len_bytes());
        prop_assert_eq!(s.qlen_pkts, q.len_pkts());
        prop_assert_eq!(s.link_rate_bps, q.rate_bps());
    }
}

/// A probabilistic AQM for decision-frequency checks.
struct FixedP(f64);
impl Aqm for FixedP {
    fn on_enqueue(
        &mut self,
        pkt: &Packet,
        _snap: &QueueSnapshot,
        _now: Time,
        rng: &mut Rng,
    ) -> Decision {
        if rng.chance(self.0) {
            if pkt.ecn.is_ect() {
                Decision::mark(self.0)
            } else {
                Decision::drop(self.0)
            }
        } else {
            Decision::pass(self.0)
        }
    }
    fn name(&self) -> &'static str {
        "fixedp"
    }
}

proptest! {
    /// Marks only ever touch ECT packets; drops only Not-ECT (for an AQM
    /// following the mark-if-possible convention), and CE-marking
    /// rewrites the field to CE.
    #[test]
    fn mark_rewrites_to_ce(p in 0.1f64..0.9, seed in any::<u64>(), ecn in arb_ecn()) {
        let mut q = BottleneckQueue::new(QueueConfig::default(), Box::new(FixedP(p)));
        let mut rng = Rng::new(seed);
        for i in 0..100u64 {
            let d = q.offer(
                Packet::data(FlowId(0), i, 1500, ecn, Time::ZERO),
                Time::ZERO,
                &mut rng,
            );
            match d.action {
                Action::Mark => prop_assert!(ecn.is_ect()),
                Action::Drop => prop_assert!(!ecn.is_ect()),
                Action::Pass => {}
            }
        }
        // Everything admitted after a Mark decision must carry CE.
        let mut t = Time::ZERO;
        while let Some((pkt, _)) = q.pop(t) {
            t += Duration::from_micros(1);
            if ecn.is_ect() {
                prop_assert!(pkt.ecn == Ecn::Ce || pkt.ecn == ecn);
            } else {
                prop_assert_eq!(pkt.ecn, Ecn::NotEct);
            }
        }
    }
}

/// Arbitrary per-direction impairments spanning loss, duplication and
/// reordering jitter (up to 8 ms ≫ the test link's packet spacing).
fn arb_impair() -> impl Strategy<Value = ImpairmentConf> {
    (0.0f64..0.3, 0.0f64..0.2, 0i64..8).prop_map(|(loss, dup, jitter_ms)| ImpairmentConf {
        loss,
        dup,
        jitter: Duration::from_millis(jitter_ms),
    })
}

/// Everything observable about a short UDP run, minus the weather
/// layer's own accounting.
type RunDigest = (
    Vec<(u64, u64, u64, u64, u64)>, // per-flow deq pkts/bytes, marked, dropped, delivered
    usize,                          // sojourn sample count
    (u64, u64, u64, u64),           // counting-sink totals
    Vec<(f64, f64)>,                // queue-delay series
);

/// Run a 2 s, 2-flow CBR dumbbell with the invariant auditor attached
/// (it panics on any conservation violation) and an optional weather
/// layer. CBR sources keep the bottleneck saturated so drops, marks and
/// the impairment paths all see traffic.
fn run_weather_sim(imp: Option<LinkImpairments>, seed: u64) -> (RunDigest, Option<ImpairStats>) {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 2_000_000,
                buffer_bytes: 30_000,
            },
            seed,
            monitor: MonitorConfig::default(),
        },
        Box::new(PassAqm),
    );
    sim.core.enable_audit(AuditSink::new(seed));
    if let Some(i) = imp {
        sim.core.set_impairments(i);
    }
    for _ in 0..2 {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "udp",
            Time::ZERO,
            |id| Box::new(UdpCbrSource::new(id, 1_500_000, 1000, Ecn::NotEct)),
        );
    }
    sim.run_until(Time::from_secs(2));
    let t = sim.core.counters.totals();
    let digest = (
        sim.core
            .monitor
            .flows
            .iter()
            .map(|f| {
                (
                    f.dequeued_pkts,
                    f.dequeued_bytes,
                    f.marked,
                    f.dropped,
                    f.delivered_pkts,
                )
            })
            .collect(),
        sim.core.monitor.sojourn_ms.len(),
        (t.enqueued, t.marked, t.dropped, t.dequeued),
        sim.core.monitor.qdelay_series(),
    );
    (digest, sim.core.impairments().map(|i| i.stats()))
}

proptest! {
    /// The same weather seed gives a bit-identical impaired run —
    /// including its loss/duplication accounting.
    #[test]
    fn same_weather_seed_is_bit_identical(
        conf in arb_impair(),
        seed in any::<u64>(),
        wseed in any::<u64>(),
    ) {
        let imp = LinkImpairments::new(wseed).symmetric(conf);
        prop_assert_eq!(
            run_weather_sim(Some(imp), seed),
            run_weather_sim(Some(imp), seed)
        );
    }

    /// An attached all-zero weather layer is exact identity: every
    /// observable matches the run with no layer at all (the layer's
    /// accounting still counts offered packets, but loses and
    /// duplicates none).
    #[test]
    fn zero_rate_weather_is_exact_identity(seed in any::<u64>(), wseed in any::<u64>()) {
        let off = LinkImpairments::new(wseed);
        let (with_layer, stats) = run_weather_sim(Some(off), seed);
        let (without, none) = run_weather_sim(None, seed);
        prop_assert_eq!(with_layer, without);
        prop_assert!(none.is_none());
        let s = stats.expect("layer was attached");
        prop_assert_eq!((s.fwd_lost, s.fwd_dup, s.rev_lost, s.rev_dup), (0, 0, 0, 0));
        prop_assert!(s.fwd_offered > 0, "traffic flowed through the layer");
    }

    /// Conservation under loss + reordering + duplication, with the
    /// auditor attached (it panics the run on any enqueue/dequeue or
    /// impairment-accounting violation): the layer's books balance, its
    /// offered count equals the bottleneck's dequeues, and deliveries
    /// never exceed survivors + duplicates (stragglers may still be in
    /// flight when the clock stops).
    #[test]
    fn conservation_holds_under_weather(
        conf in arb_impair(),
        seed in any::<u64>(),
        wseed in any::<u64>(),
    ) {
        let imp = LinkImpairments::new(wseed).symmetric(conf);
        let (digest, stats) = run_weather_sim(Some(imp), seed);
        let s = stats.expect("layer was attached");
        prop_assert_eq!(s.fwd_lost + s.fwd_passed(), s.fwd_offered);
        prop_assert_eq!(s.rev_lost + s.rev_passed(), s.rev_offered);
        let (flows, _, totals, _) = digest;
        prop_assert_eq!(s.fwd_offered, totals.3, "offered == dequeued");
        let delivered: u64 = flows.iter().map(|f| f.4).sum();
        prop_assert!(
            delivered <= s.fwd_passed() + s.fwd_dup,
            "delivered {} > passed {} + dup {}",
            delivered, s.fwd_passed(), s.fwd_dup
        );
        if conf.loss < 0.3 {
            prop_assert!(delivered > 0, "a sub-30% loss link still delivers");
        }
    }
}

/// A plain FIFO hop (tail-drop only) for chain-building.
fn fifo_hop(rate_bps: u64, buffer_bytes: usize) -> Box<dyn Qdisc> {
    Box::new(BottleneckQueue::new(
        QueueConfig {
            rate_bps,
            buffer_bytes,
        },
        Box::new(PassAqm),
    ))
}

/// Run a random 2–4-hop chain (one end-to-end CBR flow plus per-hop
/// cross traffic) with the invariant auditor attached — `run_until`
/// finishes with the per-hop conservation checks, panicking on any
/// admission/departure imbalance. Returns the per-hop egress bytes of
/// the end-to-end flow, first hop first.
fn run_chain_sim(hops: u32, rates_mbps: &[u64], seed: u64) -> Vec<u64> {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: rates_mbps[0] * 1_000_000,
                buffer_bytes: 200_000,
            },
            seed,
            monitor: MonitorConfig::default(),
        },
        Box::new(PassAqm),
    );
    sim.core.enable_audit(AuditSink::new(seed));
    for h in 1..hops {
        let id = sim.add_hop(
            fifo_hop(rates_mbps[h as usize] * 1_000_000, 200_000),
            Duration::from_millis(2),
        );
        assert_eq!(id, h);
    }
    let e2e = sim.add_flow(
        PathConf::symmetric(Duration::from_millis(20)),
        "e2e",
        Time::ZERO,
        |id| Box::new(UdpCbrSource::new(id, 800_000, 1000, Ecn::NotEct)),
    );
    sim.set_route(e2e, (0..hops).collect());
    for h in 1..hops {
        let cross = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "cross",
            Time::ZERO,
            |id| Box::new(UdpCbrSource::new(id, 500_000, 700, Ecn::NotEct)),
        );
        sim.set_route(cross, vec![h]);
    }
    sim.run_until(Time::from_secs(2));
    (0..hops)
        .map(|h| sim.core.hop_flow_bytes(h)[e2e.idx()])
        .collect()
}

proptest! {
    /// Per-hop packet conservation on random chains: the auditor's
    /// admission/departure books balance at every hop (a violation
    /// panics the run), the end-to-end flow's egress bytes can only
    /// shrink along its route (each hop forwards at most what the
    /// previous one emitted), and the whole chain is deterministic.
    #[test]
    fn chain_conservation_holds_per_hop(
        rates in prop::collection::vec(1u64..10, 4..5),
        hops in 2u32..5,
        seed in any::<u64>(),
    ) {
        let bytes = run_chain_sim(hops, &rates, seed);
        prop_assert_eq!(bytes.len(), hops as usize);
        prop_assert!(bytes[0] > 0, "the e2e flow moved no traffic");
        for w in bytes.windows(2) {
            prop_assert!(
                w[1] <= w[0],
                "downstream hop emitted more than it could have received: {:?}",
                &bytes
            );
        }
        prop_assert_eq!(run_chain_sim(hops, &rates, seed), bytes, "determinism");
    }
}
