//! System-level property tests: random (small) scenarios must uphold
//! global conservation and sanity invariants under every AQM.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_experiments::scenario::{AqmKind, FlowGroup, Scenario, UdpGroup};
use pi2_experiments::workload::{bounded_pareto_mean, mice_arrivals, MiceWorkload};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};
use proptest::prelude::*;

fn arb_aqm() -> impl Strategy<Value = AqmKind> {
    prop_oneof![
        Just(AqmKind::pi2_default()),
        Just(AqmKind::pie_default()),
        Just(AqmKind::coupled_default()),
        Just(AqmKind::Pi(pi2_aqm::PiConfig::default())),
        Just(AqmKind::Red(pi2_aqm::RedConfig::default())),
        Just(AqmKind::Codel(pi2_aqm::CodelConfig::default())),
        Just(AqmKind::TailDrop),
    ]
}

fn arb_cc() -> impl Strategy<Value = (CcKind, EcnSetting)> {
    prop_oneof![
        Just((CcKind::Reno, EcnSetting::NotEcn)),
        Just((CcKind::Cubic, EcnSetting::NotEcn)),
        Just((CcKind::Cubic, EcnSetting::Classic)),
        Just((CcKind::Dctcp, EcnSetting::Scalable)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the AQM, traffic mix and seed: packets are conserved
    /// (delivered ≤ dequeued ≤ sent per flow), utilization is physical,
    /// and the run is deterministic.
    #[test]
    fn scenario_invariants(
        aqm in arb_aqm(),
        cc in arb_cc(),
        n_flows in 1usize..6,
        rtt_ms in 5i64..120,
        mbps in 2u64..60,
        udp in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut sc = Scenario::new(aqm, mbps * 1_000_000);
        let rtt = Duration::from_millis(rtt_ms);
        sc.tcp.push(FlowGroup::new(n_flows, cc.0, cc.1, "tcp", rtt));
        if udp {
            sc.udp.push(UdpGroup {
                count: 1,
                rate_bps: mbps * 200_000, // 20% of the link
                pkt_size: 1000,
                label: "udp".to_string(),
                rtt,
                start: Time::ZERO,
                stop: None,
            });
        }
        sc.duration = Time::from_secs(8);
        sc.warmup = Duration::from_secs(2);
        sc.seed = seed;
        let r = sc.run();

        for f in &r.monitor.flows {
            prop_assert!(f.delivered_pkts <= f.dequeued_pkts);
            prop_assert!(f.dequeued_pkts + f.dropped <= f.sent_pkts + 1);
            prop_assert!(f.marked + f.dropped <= f.sent_pkts);
        }
        // No physically impossible utilization samples.
        for (_, u) in r.monitor.util_series() {
            prop_assert!((0.0..=1.05).contains(&u), "utilization {u}");
        }
        // Sojourns are non-negative and finite.
        for &s in &r.monitor.sojourn_ms {
            prop_assert!(s.is_finite() && s >= 0.0);
        }
        // Determinism.
        let r2 = sc.run();
        prop_assert_eq!(
            r.monitor.flows[0].dequeued_bytes,
            r2.monitor.flows[0].dequeued_bytes
        );
    }

    /// The AQM keeps the long-run queue finite: the sampled queue delay
    /// never approaches the (huge) physical buffer when traffic is
    /// TCP-only and responsive.
    #[test]
    fn responsive_traffic_never_fills_the_buffer(
        aqm in prop_oneof![
            Just(AqmKind::pi2_default()),
            Just(AqmKind::pie_default()),
            Just(AqmKind::coupled_default()),
        ],
        n_flows in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut sc = Scenario::new(aqm, 10_000_000);
        sc.tcp.push(FlowGroup::new(
            n_flows,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "tcp",
            Duration::from_millis(40),
        ));
        sc.duration = Time::from_secs(12);
        sc.warmup = Duration::from_secs(4);
        sc.seed = seed;
        let r = sc.run();
        // The 40000-packet buffer would be 48 seconds of delay; any
        // sample beyond 2 s means the controller lost the queue.
        for (t, d) in r.qdelay_series() {
            prop_assert!(d < 2_000.0, "queue delay {d:.0} ms at t={t:.0}");
        }
    }

    /// Workload generation is a pure function of its configuration: the
    /// same config yields the same stream, and the stream is well-formed
    /// (ordered arrivals inside the window, sizes inside the bounds).
    #[test]
    fn mice_streams_are_deterministic_and_well_formed(
        rate in 1.0f64..40.0,
        alpha in 1.05f64..2.5,
        hi in 20.0f64..500.0,
        seed in any::<u64>(),
    ) {
        let w = MiceWorkload {
            arrivals_per_sec: rate,
            size_dist: (alpha, 2.0, hi),
            start: Time::from_secs(1),
            horizon: Time::from_secs(31),
            seed,
        };
        let a = mice_arrivals(&w);
        let b = mice_arrivals(&w);
        prop_assert_eq!(&a, &b, "same config must replay the same stream");
        let mut prev = w.start;
        for m in &a {
            prop_assert!(m.at >= prev && m.at < w.horizon);
            prop_assert!(m.size_pkts >= 1 && m.size_pkts <= hi.round() as u64);
            prev = m.at;
        }
    }

    /// Empirical bounded-Pareto size moments track the analytic mean
    /// within a loose tolerance (heavy tails need a wide net).
    #[test]
    fn mice_sizes_track_the_analytic_pareto_mean(
        alpha in 1.3f64..2.5,
        seed in any::<u64>(),
    ) {
        let w = MiceWorkload {
            arrivals_per_sec: 60.0,
            size_dist: (alpha, 2.0, 200.0),
            start: Time::ZERO,
            horizon: Time::from_secs(60),
            seed,
        };
        let a = mice_arrivals(&w);
        prop_assert!(a.len() > 2_000, "need a large sample, got {}", a.len());
        let emp = a.iter().map(|m| m.size_pkts as f64).sum::<f64>() / a.len() as f64;
        let exact = bounded_pareto_mean(alpha, 2.0, 200.0);
        // Rounding to whole packets biases up by at most 0.5; the rest is
        // sampling noise.
        prop_assert!(
            (emp - exact).abs() < 0.5 + 0.35 * exact,
            "empirical mean {emp:.2} vs analytic {exact:.2} (α={alpha:.2})"
        );
    }

    /// Arrival-rate scaling symmetry: doubling the rate roughly doubles
    /// the count over the same window, and counts scale linearly with
    /// the window length at a fixed rate.
    #[test]
    fn mice_arrival_counts_scale_with_rate_and_window(
        rate in 4.0f64..20.0,
        seed in any::<u64>(),
    ) {
        let base = MiceWorkload {
            arrivals_per_sec: rate,
            size_dist: (1.2, 2.0, 200.0),
            start: Time::ZERO,
            horizon: Time::from_secs(80),
            seed,
        };
        let n1 = mice_arrivals(&base).len() as f64;
        let doubled = MiceWorkload { arrivals_per_sec: 2.0 * rate, ..base.clone() };
        let n2 = mice_arrivals(&doubled).len() as f64;
        prop_assert!(n1 > 50.0, "degenerate sample {n1}");
        let ratio = n2 / n1;
        prop_assert!(
            (1.5..2.7).contains(&ratio),
            "2x rate gave {n2}/{n1} = {ratio:.2}"
        );
        let half_window = MiceWorkload { horizon: Time::from_secs(40), ..base };
        let nh = mice_arrivals(&half_window).len() as f64;
        let wratio = n1 / nh;
        prop_assert!(
            (1.5..2.7).contains(&wratio),
            "2x window gave {n1}/{nh} = {wratio:.2}"
        );
    }
}
