//! System-level property tests: random (small) scenarios must uphold
//! global conservation and sanity invariants under every AQM.

// Entire suite gated off by default: `proptest` is a registry dependency
// the offline build cannot fetch. See the `proptests` feature in Cargo.toml.
#![cfg(feature = "proptests")]

use pi2_experiments::scenario::{AqmKind, FlowGroup, Scenario, UdpGroup};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};
use proptest::prelude::*;

fn arb_aqm() -> impl Strategy<Value = AqmKind> {
    prop_oneof![
        Just(AqmKind::pi2_default()),
        Just(AqmKind::pie_default()),
        Just(AqmKind::coupled_default()),
        Just(AqmKind::Pi(pi2_aqm::PiConfig::default())),
        Just(AqmKind::Red(pi2_aqm::RedConfig::default())),
        Just(AqmKind::Codel(pi2_aqm::CodelConfig::default())),
        Just(AqmKind::TailDrop),
    ]
}

fn arb_cc() -> impl Strategy<Value = (CcKind, EcnSetting)> {
    prop_oneof![
        Just((CcKind::Reno, EcnSetting::NotEcn)),
        Just((CcKind::Cubic, EcnSetting::NotEcn)),
        Just((CcKind::Cubic, EcnSetting::Classic)),
        Just((CcKind::Dctcp, EcnSetting::Scalable)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the AQM, traffic mix and seed: packets are conserved
    /// (delivered ≤ dequeued ≤ sent per flow), utilization is physical,
    /// and the run is deterministic.
    #[test]
    fn scenario_invariants(
        aqm in arb_aqm(),
        cc in arb_cc(),
        n_flows in 1usize..6,
        rtt_ms in 5i64..120,
        mbps in 2u64..60,
        udp in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut sc = Scenario::new(aqm, mbps * 1_000_000);
        let rtt = Duration::from_millis(rtt_ms);
        sc.tcp.push(FlowGroup::new(n_flows, cc.0, cc.1, "tcp", rtt));
        if udp {
            sc.udp.push(UdpGroup {
                count: 1,
                rate_bps: mbps * 200_000, // 20% of the link
                pkt_size: 1000,
                label: "udp".to_string(),
                rtt,
                start: Time::ZERO,
                stop: None,
            });
        }
        sc.duration = Time::from_secs(8);
        sc.warmup = Duration::from_secs(2);
        sc.seed = seed;
        let r = sc.run();

        for f in &r.monitor.flows {
            prop_assert!(f.delivered_pkts <= f.dequeued_pkts);
            prop_assert!(f.dequeued_pkts + f.dropped <= f.sent_pkts + 1);
            prop_assert!(f.marked + f.dropped <= f.sent_pkts);
        }
        // No physically impossible utilization samples.
        for (_, u) in r.monitor.util_series() {
            prop_assert!((0.0..=1.05).contains(&u), "utilization {u}");
        }
        // Sojourns are non-negative and finite.
        for &s in &r.monitor.sojourn_ms {
            prop_assert!(s.is_finite() && s >= 0.0);
        }
        // Determinism.
        let r2 = sc.run();
        prop_assert_eq!(
            r.monitor.flows[0].dequeued_bytes,
            r2.monitor.flows[0].dequeued_bytes
        );
    }

    /// The AQM keeps the long-run queue finite: the sampled queue delay
    /// never approaches the (huge) physical buffer when traffic is
    /// TCP-only and responsive.
    #[test]
    fn responsive_traffic_never_fills_the_buffer(
        aqm in prop_oneof![
            Just(AqmKind::pi2_default()),
            Just(AqmKind::pie_default()),
            Just(AqmKind::coupled_default()),
        ],
        n_flows in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut sc = Scenario::new(aqm, 10_000_000);
        sc.tcp.push(FlowGroup::new(
            n_flows,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "tcp",
            Duration::from_millis(40),
        ));
        sc.duration = Time::from_secs(12);
        sc.warmup = Duration::from_secs(4);
        sc.seed = seed;
        let r = sc.run();
        // The 40000-packet buffer would be 48 seconds of delay; any
        // sample beyond 2 s means the controller lost the queue.
        for (t, d) in r.qdelay_series() {
            prop_assert!(d < 2_000.0, "queue delay {d:.0} ms at t={t:.0}");
        }
    }
}
