//! Regression: the parallel scenario executor must be a pure
//! performance optimization — its output bit-identical to a serial run
//! for any thread count, including the `PI2_THREADS` env route.
//!
//! Runs a small Figures 15–18 sub-grid (short durations; the full grid
//! is 100 × 100-second simulations) and compares the complete `Debug`
//! rendering of the results, which covers every monitor sample, not
//! just headline summaries.

use pi2_experiments::grid::{run_cell, Pair};
use pi2_experiments::runner::{par_map_threads, run_all, run_all_threads};
use pi2_experiments::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};

/// A 2×2 sub-grid of the paper's link × RTT axes, both AQMs.
fn sub_grid_cells() -> Vec<(AqmKind, u64, i64, u64)> {
    let mut cells = Vec::new();
    for aqm in [AqmKind::pie_default(), AqmKind::coupled_default()] {
        for link in [4u64, 40] {
            for rtt in [10i64, 50] {
                cells.push((aqm.clone(), link, rtt, 0x15c0 + link + rtt as u64));
            }
        }
    }
    cells
}

fn small_scenarios() -> Vec<Scenario> {
    sub_grid_cells()
        .into_iter()
        .map(|(aqm, link, rtt, seed)| {
            let rtt = Duration::from_millis(rtt);
            let mut sc = Scenario::new(aqm, link * 1_000_000);
            sc.tcp.push(FlowGroup::new(
                1,
                CcKind::Cubic,
                EcnSetting::NotEcn,
                "cubic",
                rtt,
            ));
            sc.tcp.push(FlowGroup::new(
                1,
                CcKind::Dctcp,
                EcnSetting::Scalable,
                "dctcp",
                rtt,
            ));
            sc.duration = Time::from_secs(5);
            sc.warmup = Duration::from_secs(1);
            sc.seed = seed;
            sc
        })
        .collect()
}

#[test]
fn sub_grid_is_bit_identical_across_thread_counts() {
    let cells = sub_grid_cells();
    let serial: Vec<String> = cells
        .iter()
        .map(|(aqm, link, rtt, seed)| {
            format!(
                "{:?}",
                run_cell(aqm.clone(), Pair::CubicVsDctcp, *link, *rtt, 5, *seed)
            )
        })
        .collect();
    for threads in [1usize, 4] {
        let parallel: Vec<String> = par_map_threads(threads, &cells, |(aqm, link, rtt, seed)| {
            format!(
                "{:?}",
                run_cell(aqm.clone(), Pair::CubicVsDctcp, *link, *rtt, 5, *seed)
            )
        });
        assert_eq!(
            parallel, serial,
            "grid output diverged from serial at {threads} threads"
        );
    }
}

#[test]
fn run_all_matches_serial_and_env_thread_knob() {
    let scenarios = small_scenarios();
    let serial: Vec<String> = scenarios.iter().map(|s| format!("{:?}", s.run())).collect();

    // Explicit thread counts, bypassing the environment.
    for threads in [1usize, 4] {
        let out: Vec<String> = run_all_threads(threads, &scenarios)
            .iter()
            .map(|r| format!("{r:?}"))
            .collect();
        assert_eq!(out, serial, "run_all diverged at {threads} threads");
    }

    // The PI2_THREADS env route (both settings inside one test body so
    // no parallel test races on the variable).
    let saved = std::env::var("PI2_THREADS").ok();
    for threads in ["1", "4"] {
        std::env::set_var("PI2_THREADS", threads);
        let out: Vec<String> = run_all(&scenarios).iter().map(|r| format!("{r:?}")).collect();
        assert_eq!(out, serial, "run_all diverged at PI2_THREADS={threads}");
    }
    match saved {
        Some(v) => std::env::set_var("PI2_THREADS", v),
        None => std::env::remove_var("PI2_THREADS"),
    }
}

#[test]
fn same_seed_twice_is_bit_identical() {
    let sc = &small_scenarios()[1];
    let a = format!("{:?}", sc.run());
    let b = format!("{:?}", sc.run());
    assert_eq!(a, b, "identical seed must reproduce identical results");
}
