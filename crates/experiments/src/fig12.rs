//! Figure 12: queue delay under varying link capacity.
//!
//! 20 TCP flows; the bottleneck steps 100 → 20 → 100 Mb/s at 50 s and
//! 100 s. The paper samples at 100 ms to expose the transition peaks: PIE
//! peaks at 510 ms when capacity collapses, PI2 at 250 ms, and PIE shows
//! two further >100 ms oscillation peaks where PI2 shows none.

use crate::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};

/// One AQM's varying-capacity run.
#[derive(Clone, Debug)]
pub struct Fig12Run {
    /// AQM name.
    pub aqm: &'static str,
    /// `(t, queue delay ms)` at 100 ms sampling.
    pub qdelay: Vec<(f64, f64)>,
    /// Peak queue delay in the window following the 50 s rate drop.
    /// `None` means the window held no samples at all — a mis-scheduled
    /// disturbance or truncated run, *not* a perfectly flat queue.
    pub drop_peak_ms: Option<f64>,
    /// Number of ≥100 ms excursions after the initial drop peak has
    /// passed (55 s .. 100 s) — the paper counts 2 for PIE, 0 for PI2.
    pub late_excursions: usize,
    /// Peak after capacity is restored at 100 s (PIE overshoots when the
    /// flows ramp up to fill the new capacity; PI2 shows no visible one).
    /// `None` again means "no samples in the 100–110 s window", which
    /// must stay distinguishable from a true zero peak.
    pub restore_peak_ms: Option<f64>,
    /// Time (s) from the 50 s rate drop until the queue re-enters and
    /// holds the target ± 20 ms band.
    pub settle_s: Option<f64>,
}

/// Run one AQM through the capacity schedule.
pub fn run_one(aqm: AqmKind, seed: u64) -> Fig12Run {
    let mut sc = Scenario::new(aqm, 100_000_000);
    sc.rate_changes = vec![
        (Time::from_secs(50), 20_000_000),
        (Time::from_secs(100), 100_000_000),
    ];
    sc.tcp.push(FlowGroup::new(
        20,
        CcKind::Reno,
        EcnSetting::NotEcn,
        "reno",
        Duration::from_millis(100),
    ));
    sc.duration = Time::from_secs(150);
    sc.warmup = Duration::from_secs(10);
    sc.sample_interval = Duration::from_millis(100);
    sc.seed = seed;
    let r = sc.run();
    let series = r.qdelay_series().to_vec();
    let drop_peak_ms = pi2_stats::peak_in(&series, 50.0, 55.0).map(|(_, v)| v);
    let late_excursions = pi2_stats::excursions_above(&series, 55.0, 100.0, 100.0);
    let restore_peak_ms = pi2_stats::peak_in(&series, 100.0, 110.0).map(|(_, v)| v);
    // Settling after the 50 s capacity collapse: back inside target ± 20 ms
    // and holding for 5 s.
    let settle_s = pi2_stats::settling_time(&series, 50.0, 20.0, 20.0, 5.0);
    Fig12Run {
        aqm: r.aqm,
        qdelay: series,
        drop_peak_ms,
        late_excursions,
        restore_peak_ms,
        settle_s,
    }
}

/// The full figure: PIE vs PI2.
pub fn fig12() -> Vec<Fig12Run> {
    vec![
        run_one(AqmKind::pie_default(), 12),
        run_one(AqmKind::pi2_default(), 12),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_drop_produces_a_transient_peak() {
        let run = run_one(AqmKind::pi2_default(), 2);
        // A 5× rate cut with 20 flows must spike the queue well above the
        // 20 ms target before the controller recovers. A `None` peak would
        // mean the disturbance window saw no samples at all.
        let peak = run.drop_peak_ms.expect("samples in the 50-55 s window");
        assert!(peak > 50.0, "expected a transient spike, got {peak:.0} ms");
        assert!(
            run.restore_peak_ms.is_some(),
            "the 100-110 s restore window must contain samples"
        );
        // ... and the controller must bring it back down: the last 20 s at
        // 20 Mb/s should sit near target again.
        let late: Vec<f64> = run
            .qdelay
            .iter()
            .filter(|(t, _)| (80.0..100.0).contains(t))
            .map(|&(_, d)| d)
            .collect();
        let mean = pi2_stats::mean(&late);
        assert!(mean < 60.0, "queue stuck high after drop: {mean:.0} ms");
    }
}
