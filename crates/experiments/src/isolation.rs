//! The isolation alternative (paper §1): per-flow queuing vs coupled
//! signalling.
//!
//! The introduction weighs per-flow queuing as the known way to protect
//! flows from each other, at the cost of flow inspection and per-flow
//! state. This experiment runs the coexistence workload (Cubic vs DCTCP)
//! over FQ-DRR and over the paper's coupled single-queue PI2, comparing
//! what each buys: FQ isolates by scheduling (each flow gets a fair rate
//! and its own queue), the coupled AQM balances by signalling in one
//! FIFO.

use crate::scenario::AqmKind;
use pi2_aqm::{FqConfig, FqDrr};
use pi2_netsim::{MonitorConfig, PathConf, Sim, SimConfig};
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

/// Result of one isolation run.
#[derive(Clone, Debug)]
pub struct IsolationResult {
    /// Scheme name.
    pub scheme: &'static str,
    /// Cubic/DCTCP per-flow rate ratio.
    pub ratio: f64,
    /// Queue delay seen by Cubic packets (ms).
    pub cubic_delay: Summary,
    /// Queue delay seen by DCTCP packets (ms).
    pub dctcp_delay: Summary,
}

fn coexistence_flows(sim: &mut Sim, rtt: Duration) {
    sim.add_flow(PathConf::symmetric(rtt), "cubic", Time::ZERO, |id| {
        Box::new(TcpSource::new(
            id,
            CcKind::Cubic,
            EcnSetting::NotEcn,
            TcpConfig::default(),
        ))
    });
    sim.add_flow(PathConf::symmetric(rtt), "dctcp", Time::ZERO, |id| {
        Box::new(TcpSource::new(
            id,
            CcKind::Dctcp,
            EcnSetting::Scalable,
            TcpConfig::default(),
        ))
    });
}

fn harvest(sim: &Sim, scheme: &'static str) -> IsolationResult {
    let m = &sim.core.monitor;
    let c = m.pooled_mean_tput_mbps("cubic");
    let d = m.pooled_mean_tput_mbps("dctcp");
    IsolationResult {
        scheme,
        ratio: if d > 0.0 { c / d } else { f64::INFINITY },
        cubic_delay: Summary::of_f32(&m.pooled_sojourns("cubic")),
        dctcp_delay: Summary::of_f32(&m.pooled_sojourns("dctcp")),
    }
}

fn monitor_cfg(duration_s: u64) -> MonitorConfig {
    MonitorConfig {
        warmup: Duration::from_secs(duration_s as i64 / 3),
        record_flow_sojourns: true,
        ..MonitorConfig::default()
    }
}

/// Run Cubic vs DCTCP over FQ-DRR.
pub fn run_fq(rate_bps: u64, rtt: Duration, duration_s: u64, seed: u64) -> IsolationResult {
    let mut sim = Sim::with_qdisc(
        SimConfig {
            seed,
            monitor: monitor_cfg(duration_s),
            ..SimConfig::default()
        },
        Box::new(FqDrr::new(FqConfig::for_link(rate_bps))),
    );
    coexistence_flows(&mut sim, rtt);
    sim.run_until(Time::from_secs(duration_s));
    harvest(&sim, "fq-drr")
}

/// Run the same workload over the coupled single-queue PI2.
pub fn run_coupled(rate_bps: u64, rtt: Duration, duration_s: u64, seed: u64) -> IsolationResult {
    let mut sim = Sim::new(
        SimConfig {
            queue: pi2_netsim::QueueConfig {
                rate_bps,
                buffer_bytes: 40_000 * 1500,
            },
            seed,
            monitor: monitor_cfg(duration_s),
        },
        AqmKind::coupled_default().build(),
    );
    coexistence_flows(&mut sim, rtt);
    sim.run_until(Time::from_secs(duration_s));
    harvest(&sim, "coupled-pi2")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fq_balances_rates_but_not_latency() {
        let r = run_fq(40_000_000, Duration::from_millis(10), 40, 0xf0);
        assert!(
            (0.5..2.0).contains(&r.ratio),
            "FQ should equalize rates by scheduling: {:.2}",
            r.ratio
        );
        // The instructive half: with no per-queue AQM, even DCTCP (which
        // receives no marks here and falls back to loss probing) bloats
        // its own queue to the backlog cap. Scheduling fixes fairness,
        // not latency.
        assert!(
            r.dctcp_delay.mean > 40.0 && r.cubic_delay.mean > 40.0,
            "without AQM both queues should bloat: {:.1} / {:.1} ms",
            r.dctcp_delay.mean,
            r.cubic_delay.mean
        );
    }

    #[test]
    fn coupled_shares_one_queue() {
        let r = run_coupled(40_000_000, Duration::from_millis(10), 40, 0xf0);
        // Single FIFO: both flows see the same ~20 ms queue.
        assert!(
            (r.cubic_delay.mean - r.dctcp_delay.mean).abs() < 5.0,
            "single-queue delays should match: {:.1} vs {:.1} ms",
            r.cubic_delay.mean,
            r.dctcp_delay.mean
        );
        assert!((0.4..2.5).contains(&r.ratio));
    }
}
