//! Step-response dynamics: scheduled disturbances and "network weather".
//!
//! The paper's §5 claim is that PI2's linearized controller reacts to
//! operating-point changes at least as fast as PIE's, without PIE's
//! auto-tuned gain heuristics. Figure 12 shows this for one capacity
//! schedule; this family generalizes it into a reusable test surface:
//!
//! * **Rate step** — the bottleneck collapses 40 → 10 Mb/s mid-run and
//!   recovers, the classic "capacity drop" transient;
//! * **Flow churn** — a burst of extra flows joins and later leaves,
//!   quadrupling the offered load without touching the link;
//!
//! each run for PIE, PI2, and the DualPI2 qdisc, with an optional
//! [`LinkImpairments`] layer (random loss, reordering jitter,
//! duplication) riding on the path. Every run is reduced to the two
//! numbers dynamics arguments turn on: the transient **spike height**
//! and the [`pi2_stats::settle_time`] back into the target band.

use crate::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_netsim::{ImpairStats, LinkImpairments};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};

/// When the disturbance hits (rate drop / churn flows join), seconds.
pub const STEP_DOWN_S: u64 = 30;
/// When it reverts (rate restored / churn flows leave), seconds.
pub const STEP_UP_S: u64 = 60;
/// Total run length, seconds (leaves a full settle window after each
/// disturbance edge).
pub const DURATION_S: u64 = 85;
/// The AQMs' delay target (ms) the queue must re-settle around.
pub const TARGET_MS: f64 = 20.0;
/// Settle band half-width (ms): "settled" means inside target ± band.
pub const BAND_MS: f64 = 20.0;
/// How long (s) the series must hold the band to count as settled.
pub const HOLD_S: f64 = 5.0;

/// Which disturbance the run applies at [`STEP_DOWN_S`] / [`STEP_UP_S`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disturbance {
    /// Bottleneck rate steps 40 → 10 → 40 Mb/s (a 4× capacity drop).
    RateStep,
    /// 15 extra flows join 5 long-running ones, then leave (4× load).
    FlowChurn,
}

impl Disturbance {
    /// Display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            Disturbance::RateStep => "rate-step",
            Disturbance::FlowChurn => "flow-churn",
        }
    }
}

/// One AQM × disturbance measurement.
#[derive(Clone, Debug)]
pub struct DynamicsRun {
    /// AQM name.
    pub aqm: &'static str,
    /// Which disturbance was applied.
    pub disturbance: Disturbance,
    /// `(t, queue delay ms)` at 100 ms sampling.
    pub qdelay: Vec<(f64, f64)>,
    /// Peak queue delay (ms) in the 5 s after the disturbance hits.
    pub spike_ms: f64,
    /// Time (s) from the disturbance until the queue holds
    /// [`TARGET_MS`] ± [`BAND_MS`] for [`HOLD_S`]; `None` = never.
    pub settle_s: Option<f64>,
    /// Spike after the disturbance reverts at [`STEP_UP_S`] (ms).
    pub revert_spike_ms: f64,
    /// Impairment accounting, when a weather layer was attached.
    pub impair: Option<ImpairStats>,
}

/// The scenario for one AQM × disturbance cell (before any impairments).
pub fn scenario_for(aqm: AqmKind, d: Disturbance, seed: u64) -> Scenario {
    let mut sc = Scenario::new(aqm, 40_000_000);
    sc.duration = Time::from_secs(DURATION_S);
    sc.warmup = Duration::from_secs(5);
    sc.sample_interval = Duration::from_millis(100);
    sc.seed = seed;
    let rtt = Duration::from_millis(50);
    match d {
        Disturbance::RateStep => {
            sc.tcp.push(FlowGroup::new(
                10,
                CcKind::Cubic,
                EcnSetting::NotEcn,
                "cubic",
                rtt,
            ));
            sc.rate_changes = vec![
                (Time::from_secs(STEP_DOWN_S), 10_000_000),
                (Time::from_secs(STEP_UP_S), 40_000_000),
            ];
        }
        Disturbance::FlowChurn => {
            sc.tcp.push(FlowGroup::new(
                5,
                CcKind::Cubic,
                EcnSetting::NotEcn,
                "base",
                rtt,
            ));
            sc.tcp.push(
                FlowGroup::new(15, CcKind::Cubic, EcnSetting::NotEcn, "churn", rtt).between(
                    Time::from_secs(STEP_DOWN_S),
                    Time::from_secs(STEP_UP_S),
                ),
            );
        }
    }
    sc
}

/// Run one cell, optionally under a path-impairment layer.
pub fn run_one(
    aqm: AqmKind,
    d: Disturbance,
    impairments: Option<LinkImpairments>,
    seed: u64,
) -> DynamicsRun {
    let mut sc = scenario_for(aqm, d, seed);
    sc.impairments = impairments;
    let r = sc.run();
    let series = r.qdelay_series().to_vec();
    let hit = STEP_DOWN_S as f64;
    let revert = STEP_UP_S as f64;
    let spike_ms = pi2_stats::peak_in(&series, hit, hit + 5.0).map_or(0.0, |(_, v)| v);
    let revert_spike_ms =
        pi2_stats::peak_in(&series, revert, revert + 5.0).map_or(0.0, |(_, v)| v);
    let settle_s = pi2_stats::settle_time(&series, hit, TARGET_MS, BAND_MS, HOLD_S);
    DynamicsRun {
        aqm: r.aqm,
        disturbance: d,
        qdelay: series,
        spike_ms,
        settle_s,
        revert_spike_ms,
        impair: r.impair,
    }
}

/// The full family: {rate-step, flow-churn} × {PIE, PI2, DualPI2}, fanned
/// out through [`crate::runner::par_map`] (the `PI2_THREADS` knob) with
/// results bit-identical to a serial loop for any thread count.
pub fn dynamics(seed: u64, impairments: Option<LinkImpairments>) -> Vec<DynamicsRun> {
    let mut cells = Vec::new();
    for d in [Disturbance::RateStep, Disturbance::FlowChurn] {
        for aqm in [
            AqmKind::pie_default(),
            AqmKind::pi2_default(),
            AqmKind::dualq_default(40_000_000),
        ] {
            cells.push((aqm, d));
        }
    }
    crate::runner::par_map(&cells, |(aqm, d)| run_one(aqm.clone(), *d, impairments, seed))
}

/// Render the family as an aligned text table (one row per run) with the
/// spike-height and settling-time columns.
pub fn render_table(runs: &[DynamicsRun]) -> String {
    let mut out = String::from(
        "disturbance   aqm          spike_ms  settle_s  revert_spike_ms  weather\n",
    );
    for r in runs {
        let settle = r
            .settle_s
            .map_or("never".to_string(), |s| format!("{s:.1}"));
        let weather = match &r.impair {
            None => "off".to_string(),
            Some(s) => format!(
                "fwd {}/{} lost, {} dup; rev {}/{} lost, {} dup",
                s.fwd_lost, s.fwd_offered, s.fwd_dup, s.rev_lost, s.rev_offered, s.rev_dup
            ),
        };
        out.push_str(&format!(
            "{:<13} {:<12} {:>8.1}  {:>8}  {:>15.1}  {}\n",
            r.disturbance.name(),
            r.aqm,
            r.spike_ms,
            settle,
            r.revert_spike_ms,
            weather
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2_netsim::ImpairmentConf;

    #[test]
    fn rate_step_spikes_then_settles_under_pi2() {
        let r = run_one(AqmKind::pi2_default(), Disturbance::RateStep, None, 3);
        assert!(
            r.spike_ms > BAND_MS + TARGET_MS,
            "a 4x capacity drop must push the queue out of band, got {:.1} ms",
            r.spike_ms
        );
        let settle = r.settle_s.expect("PI2 should re-settle after the drop");
        assert!(
            settle < (STEP_UP_S - STEP_DOWN_S) as f64,
            "settled only after {settle:.1} s"
        );
        assert!(r.impair.is_none(), "no weather requested");
    }

    #[test]
    fn flow_churn_perturbs_the_queue() {
        let r = run_one(AqmKind::pi2_default(), Disturbance::FlowChurn, None, 3);
        // 15 joining flows slam the queue; the controller recovers.
        assert!(r.spike_ms > 30.0, "churn spike {:.1} ms", r.spike_ms);
        assert!(r.settle_s.is_some(), "PI2 should absorb the churn");
    }

    #[test]
    fn weather_layer_reports_accounting() {
        let imp = LinkImpairments::new(0xBAD_5EED).symmetric(ImpairmentConf {
            loss: 0.01,
            dup: 0.0,
            jitter: Duration::ZERO,
        });
        let r = run_one(AqmKind::pi2_default(), Disturbance::RateStep, Some(imp), 3);
        let s = r.impair.expect("weather stats present");
        assert!(s.fwd_offered > 0 && s.fwd_lost > 0, "loss applied: {s:?}");
        // 1% loss keeps the link usable: the run still settles.
        assert!(r.settle_s.is_some());
    }

    #[test]
    fn table_lists_every_run() {
        let runs = vec![
            run_one(AqmKind::pi2_default(), Disturbance::RateStep, None, 5),
            run_one(
                AqmKind::dualq_default(40_000_000),
                Disturbance::RateStep,
                None,
                5,
            ),
        ];
        let t = render_table(&runs);
        assert!(t.contains("pi2") && t.contains("dualpi2"), "{t}");
        assert!(t.contains("rate-step"));
    }
}
