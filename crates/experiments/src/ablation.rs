//! Ablations of the design choices the paper calls out.
//!
//! * `k_sweep` — the coupling factor (analytic 1.19 vs empirical 2);
//! * `gain_sweep` — how far PI2's gains can be raised before the
//!   responsiveness/stability trade bites (Section 4's ×2.5 headroom);
//! * `bare_pie` — the paper's §5 claim that PIE's extra heuristics have
//!   no measurable effect;
//! * `square_mode` — `p'·p'` vs `max(Y₁,Y₂)` decision equivalence at the
//!   system level.

use crate::fig11::{run_one as fig11_run, TrafficMix};
use crate::grid::{run_cell, Pair};
use crate::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_aqm::{CoupledPi2Config, FixedProb, Pi2Config, PieConfig, SquareMode};
use pi2_netsim::{MonitorConfig, PathConf, QueueConfig, Sim, SimConfig};
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

/// One coupling-factor measurement.
#[derive(Clone, Debug)]
pub struct KSweepPoint {
    /// Coupling factor.
    pub k: f64,
    /// Cubic/DCTCP per-flow rate ratio.
    pub ratio: f64,
}

/// Sweep the coupling factor k and report the Cubic/DCTCP rate balance
/// (40 Mb/s, 10 ms — the Figure 19 cell). Points run in parallel via
/// [`crate::runner::par_map`].
pub fn k_sweep(ks: &[f64], duration_s: u64) -> Vec<KSweepPoint> {
    crate::runner::par_map(ks, |&k| {
        let mut cfg = CoupledPi2Config::default();
        cfg.k = k;
        let cell = run_cell(
            AqmKind::Coupled(cfg),
            Pair::CubicVsDctcp,
            40,
            10,
            duration_s,
            0x5eed + (k * 100.0) as u64,
        );
        KSweepPoint {
            k,
            ratio: cell.rate_ratio,
        }
    })
}

/// One gain-multiplier measurement.
#[derive(Clone, Debug)]
pub struct GainSweepPoint {
    /// Gain multiplier relative to PIE's gains (the paper chose 2.5).
    pub multiplier: f64,
    /// Start-up/transient peak queue delay (ms).
    pub peak_ms: f64,
    /// Post-warm-up delay summary.
    pub delay: Summary,
}

/// Sweep PI2's gain multiplier under the Figure 11(a) workload. Points
/// run in parallel via [`crate::runner::par_map`].
pub fn gain_sweep(multipliers: &[f64], seed: u64) -> Vec<GainSweepPoint> {
    crate::runner::par_map(multipliers, |&m| {
        let cfg = Pi2Config {
            alpha_hz: (2.0 / 16.0) * m,
            beta_hz: (20.0 / 16.0) * m,
            ..Pi2Config::default()
        };
        let run = fig11_run(AqmKind::Pi2(cfg), TrafficMix::Light, seed);
        GainSweepPoint {
            multiplier: m,
            peak_ms: run.peak_ms,
            delay: run.delay,
        }
    })
}

/// Bare-PIE vs full-PIE comparison over the Figure 11 mixes. Returns
/// `(mix label, full delay summary, bare delay summary)` triples.
pub fn bare_pie(seed: u64) -> Vec<(&'static str, Summary, Summary)> {
    TrafficMix::all()
        .into_iter()
        .map(|mix| {
            let full = fig11_run(AqmKind::Pie(PieConfig::paper_default()), mix, seed);
            let bare = fig11_run(AqmKind::Pie(PieConfig::bare()), mix, seed);
            (mix.label(), full.delay, bare.delay)
        })
        .collect()
}

/// Bursty-traffic variant of the bare-PIE comparison: an on-off CBR
/// source (8 Mb/s bursts, 100 ms on / 900 ms off) rides over two light
/// TCP flows. This is the workload PIE's burst allowance was written
/// for; the paper notes the PI core's incremental probability already
/// filters such bursts, making the heuristic redundant. Returns
/// `(full-PIE burst loss fraction, bare-PIE burst loss fraction)`.
pub fn bare_pie_bursts(seed: u64) -> (f64, f64) {
    use pi2_netsim::{MonitorConfig, OnOffCbrSource, PathConf, QueueConfig, Sim, SimConfig};
    let run = |cfg: PieConfig| {
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps: 10_000_000,
                    buffer_bytes: 40_000 * 1500,
                },
                seed,
                monitor: MonitorConfig {
                    warmup: Duration::from_secs(5),
                    ..MonitorConfig::default()
                },
            },
            Box::new(pi2_aqm::Pie::new(cfg)),
        );
        let rtt = Duration::from_millis(40);
        for _ in 0..2 {
            sim.add_flow(PathConf::symmetric(rtt), "tcp", Time::ZERO, |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            });
        }
        let burst = sim.add_flow(PathConf::symmetric(rtt), "burst", Time::ZERO, |id| {
            Box::new(OnOffCbrSource::new(
                id,
                8_000_000,
                1000,
                Duration::from_millis(100),
                Duration::from_millis(900),
            ))
        });
        sim.run_until(Time::from_secs(60));
        let acc = sim.core.monitor.flow(burst);
        acc.dropped as f64 / acc.sent_pkts.max(1) as f64
    };
    (run(PieConfig::paper_default()), run(PieConfig::bare()))
}

/// The two squaring implementations under identical traffic: returns the
/// delay summaries `(multiply, two-compare)` — they must be statistically
/// indistinguishable.
pub fn square_mode(seed: u64) -> (Summary, Summary) {
    let multiply = fig11_run(
        AqmKind::Pi2(Pi2Config {
            square_mode: SquareMode::Multiply,
            ..Pi2Config::default()
        }),
        TrafficMix::Light,
        seed,
    );
    let two = fig11_run(
        AqmKind::Pi2(Pi2Config {
            square_mode: SquareMode::TwoCompare,
            ..Pi2Config::default()
        }),
        TrafficMix::Light,
        seed,
    );
    (multiply.delay, two.delay)
}

/// Measure the effective CReno constant `c` in `W = c/√p` with and
/// without delayed ACKs, at a fixed probability (over-provisioned link,
/// as in Appendix A validation).
///
/// Classically, delayed ACKs halve a per-ACK-counting sender's additive
/// increase (1.68 → 1.19 = 1.68/√2). Our congestion controls — like
/// modern Linux — count acked *packets* (appropriate byte counting,
/// RFC 3465), so the constant barely moves; the measurement demonstrates
/// that, and locates the analytic-k=1.19 vs empirical-k=2 slack in the
/// transports' dynamic response (DCTCP's EWMA lag) rather than in ACK
/// policy.
pub fn delayed_ack_constant(p: f64, delayed: bool, seed: u64) -> f64 {
    let rtt = Duration::from_millis(40);
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 2_000_000_000,
                buffer_bytes: usize::MAX,
            },
            seed,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(30),
                record_probs: false,
                ..MonitorConfig::default()
            },
        },
        Box::new(FixedProb::new(p)),
    );
    let id = sim.add_flow(PathConf::symmetric(rtt), "flow", Time::ZERO, move |id| {
        Box::new(TcpSource::new(
            id,
            CcKind::Cubic,
            EcnSetting::NotEcn,
            TcpConfig {
                delayed_ack: delayed,
                ..TcpConfig::default()
            },
        ))
    });
    sim.run_until(Time::from_secs(120));
    let span = sim.core.monitor.measurement_span();
    let tput_bps = sim.core.monitor.flow(id).mean_tput_mbps(span) * 1e6;
    let w = tput_bps * rtt.as_secs_f64() / (1500.0 * 8.0);
    w * p.sqrt()
}

/// Coexistence balance with Linux-like delayed ACKs on the Classic side
/// (the DCTCP receiver already ACKs promptly on CE changes).
pub fn delayed_ack_balance(k: f64, duration_s: u64, seed: u64) -> f64 {
    let rtt = Duration::from_millis(10);
    let mut cfg = CoupledPi2Config::default();
    cfg.k = k;
    let mut sc = Scenario::new(AqmKind::Coupled(cfg), 40_000_000);
    let mut g = FlowGroup::new(1, CcKind::Cubic, EcnSetting::NotEcn, "cubic", rtt);
    g.tcp.delayed_ack = true;
    sc.tcp.push(g);
    let mut g = FlowGroup::new(1, CcKind::Dctcp, EcnSetting::Scalable, "dctcp", rtt);
    g.tcp.delayed_ack = true;
    sc.tcp.push(g);
    sc.duration = Time::from_secs(duration_s);
    sc.warmup = Duration::from_secs(duration_s as i64 / 3);
    sc.seed = seed;
    let r = sc.run();
    r.per_flow_tput_mbps("cubic") / r.per_flow_tput_mbps("dctcp").max(1e-9)
}

/// Queue-delay estimator choice (a DESIGN decision the paper inherits
/// from Linux PIE): run the Figure 11(a) workload with PI2 under each of
/// the three estimators and compare delay summaries. They should agree —
/// the controller is robust to how τ is measured.
pub fn estimator_choice(seed: u64) -> Vec<(&'static str, Summary)> {
    use pi2_aqm::DelayEstimator;
    [
        ("qlen/rate", DelayEstimator::QlenOverRate),
        ("rate-estimator", DelayEstimator::linux_default()),
        ("sojourn", DelayEstimator::Sojourn),
    ]
    .into_iter()
    .map(|(name, est)| {
        let cfg = Pi2Config {
            estimator: est,
            ..Pi2Config::default()
        };
        let run = fig11_run(AqmKind::Pi2(cfg), TrafficMix::Light, seed);
        (name, run.delay)
    })
    .collect()
}

/// Reproduce footnote 5: the paper's testbed had a Linux bug capping the
/// bandwidth-delay product at 1 MB, which caused "anomalous results at
/// the high RTT end of the higher link rates" in Figures 15–18. We can
/// switch the artefact on by clamping the congestion window to
/// 1 MB / MSS packets.
pub fn bdp_bug(link_mbps: u64, rtt_ms: i64, clamp: bool, duration_s: u64, seed: u64) -> (f64, f64) {
    let rtt = Duration::from_millis(rtt_ms);
    let mut sc = Scenario::new(AqmKind::pie_default(), link_mbps * 1_000_000);
    let mk = |cc, ecn, label: &str| {
        let mut g = FlowGroup::new(1, cc, ecn, label, rtt);
        if clamp {
            g.tcp.max_cwnd = 1_000_000.0 / 1500.0; // the 1 MB Linux cap
        }
        g
    };
    sc.tcp.push(mk(CcKind::Cubic, EcnSetting::NotEcn, "cubic"));
    sc.tcp.push(mk(CcKind::Cubic, EcnSetting::Classic, "ecn-cubic"));
    sc.duration = Time::from_secs(duration_s);
    sc.warmup = Duration::from_secs(duration_s as i64 / 3);
    sc.seed = seed;
    let r = sc.run();
    let ratio = r.per_flow_tput_mbps("cubic") / r.per_flow_tput_mbps("ecn-cubic").max(1e-9);
    (ratio, r.util_summary().mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bdp_clamp_starves_utilization_at_high_bdp() {
        // 200 Mb/s x 100 ms: BDP = 2.5 MB >> the 1 MB clamp, so two
        // clamped flows cannot fill the pipe (the paper's footnote 5).
        // Two clamped flows can carry at most 2 x 1 MB / 100 ms =
        // 160 Mb/s of the 200 Mb/s link, i.e. utilization pinned ≤ ~80 %.
        let (_, util_clamped) = bdp_bug(200, 100, true, 30, 0xbd);
        let (_, util_free) = bdp_bug(200, 100, false, 30, 0xbd);
        assert!(
            util_clamped < 82.0,
            "clamped utilization {util_clamped:.0}% should pin at the window limit"
        );
        assert!(
            util_free > util_clamped + 5.0,
            "unclamped {util_free:.0}% vs clamped {util_clamped:.0}%"
        );
    }

    #[test]
    fn k_sweep_ratio_increases_with_k() {
        // Bigger k means a gentler Classic signal, so Cubic takes more.
        let pts = k_sweep(&[1.0, 2.0, 4.0], 30);
        assert!(
            pts[0].ratio < pts[2].ratio,
            "ratio at k=1 ({:.2}) should be below k=4 ({:.2})",
            pts[0].ratio,
            pts[2].ratio
        );
    }

    #[test]
    fn pi2_is_robust_to_the_delay_estimator() {
        let rs = estimator_choice(0xe5);
        let base = rs[0].1.mean;
        for (name, s) in &rs {
            assert!(
                (s.mean - base).abs() < 6.0,
                "{name}: mean {:.1} ms vs {:.1} ms",
                s.mean,
                base
            );
            assert!((5.0..45.0).contains(&s.p50), "{name}: p50 {:.1}", s.p50);
        }
    }

    #[test]
    fn burst_allowance_is_redundant_as_the_paper_claims() {
        let (full, bare) = bare_pie_bursts(0xb1);
        // Both variants lose few burst packets (the PI core ramps p too
        // slowly to punish a 100 ms burst), and disabling the allowance
        // changes the loss by at most a percent-scale amount.
        assert!(full < 0.05, "full PIE burst loss {full:.4}");
        assert!(bare < 0.05, "bare PIE burst loss {bare:.4}");
        assert!((full - bare).abs() < 0.02, "full {full:.4} vs bare {bare:.4}");
    }

    #[test]
    fn delayed_acks_barely_move_a_byte_counting_sender() {
        let per_pkt = delayed_ack_constant(0.02, false, 5);
        let delayed = delayed_ack_constant(0.02, true, 5);
        // Both in the CReno ballpark (stochastic loss sits a bit below
        // the deterministic-sawtooth 1.68)...
        assert!((1.2..2.1).contains(&per_pkt), "constant {per_pkt:.2}");
        assert!((1.2..2.1).contains(&delayed), "constant {delayed:.2}");
        // ...and within 15% of each other: byte counting neutralizes the
        // classic delayed-ACK growth penalty.
        let diff = (per_pkt - delayed).abs() / per_pkt;
        assert!(diff < 0.15, "{per_pkt:.2} vs {delayed:.2}");
    }

    #[test]
    fn square_modes_agree_at_system_level() {
        let (a, b) = square_mode(17);
        let diff = (a.mean - b.mean).abs() / a.mean.max(1e-9);
        assert!(
            diff < 0.35,
            "delay means diverge between square modes: {:.1} vs {:.1} ms",
            a.mean,
            b.mean
        );
    }
}
