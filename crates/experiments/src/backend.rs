//! Execution backends: packet, fluid, and the hybrid coupling.
//!
//! One [`Scenario`] can execute three ways:
//!
//! * **packet** — the default `pi2-netsim` discrete-event run, every
//!   packet simulated ([`Scenario::run`]);
//! * **fluid** — the same scenario compiled onto the flow-level engine
//!   ([`pi2_fluid::FlowLevelSim`]): no per-packet events, so 100k–1M-flow
//!   populations cost the same as 5 ([`run_fluid`]);
//! * **hybrid** — the foreground flow groups run packet-level while a
//!   background population ([`Scenario::background`]) is carried by the
//!   fluid engine, coupled to the *real* AQM's probabilities and queue
//!   delay each controller tick and stealing bottleneck capacity in
//!   return (see [`pi2_netsim::background`]).
//!
//! [`BackendSummary`] reduces any backend's output to the four
//! band-checked conformance metrics (utilization, mean queue delay,
//! signal probability, per-flow rate ratio) so `tests/hybrid.rs` can hold
//! the hybrid inside the `pi2-validate` tolerance bands against pure
//! packet runs.

use crate::scenario::{AqmKind, RunResult, Scenario};
use pi2_fluid::{
    FlowClass, FlowLevelConfig, FlowLevelSample, FlowLevelSim, FlowLevelState,
    FluidControllerKind, FluidTcpKind, PiGains,
};
use pi2_netsim::BackgroundAggregate;
use pi2_simcore::ckpt::{CkptError, CkptReader, CkptWriter, SchemaHasher};
use pi2_simcore::Duration;
use pi2_transport::CcKind;

/// MTU-sized segments, as everywhere else in the repo.
const PKT_BYTES: f64 = 1500.0;

/// Which execution backend runs a scenario.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Backend {
    /// Full packet-level discrete-event simulation.
    #[default]
    Packet,
    /// Flow-level fluid engine, no per-packet events.
    Fluid,
    /// Packet-level foreground + fluid background aggregate.
    Hybrid,
}

impl Backend {
    /// Parse a `--backend` value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "packet" => Some(Backend::Packet),
            "fluid" => Some(Backend::Fluid),
            "hybrid" => Some(Backend::Hybrid),
            _ => None,
        }
    }

    /// CLI/report name.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Packet => "packet",
            Backend::Fluid => "fluid",
            Backend::Hybrid => "hybrid",
        }
    }
}

/// A homogeneous background flow population for hybrid mode (the
/// flow-level analogue of [`crate::scenario::FlowGroup`]).
#[derive(Clone, Debug)]
pub struct BgGroup {
    /// Number of flows the aggregate represents.
    pub count: usize,
    /// Congestion control (mapped onto the closest fluid window law).
    pub cc: CcKind,
    /// Base RTT.
    pub rtt: Duration,
    /// Label for reporting.
    pub label: String,
}

impl BgGroup {
    /// A background group of `count` flows.
    pub fn new(count: usize, cc: CcKind, rtt: Duration, label: &str) -> Self {
        BgGroup {
            count,
            cc,
            rtt,
            label: label.to_string(),
        }
    }
}

/// The closest fluid window law for a packet-level congestion control:
/// the AIMD family follows Reno's `W ∝ 1/√p`, everything scalable the
/// `W ∝ 1/p` law.
pub fn cc_fluid_kind(cc: CcKind) -> FluidTcpKind {
    match cc {
        CcKind::Reno | CcKind::Cubic => FluidTcpKind::Reno,
        _ => FluidTcpKind::Scalable,
    }
}

/// How a packet-level AQM's controller maps onto the fluid encoders.
#[derive(Clone, Copy, Debug)]
pub struct FluidEncoding {
    /// Signal encoder (`p'`, `p'²`, or tune-scaled `p`).
    pub encoder: FluidControllerKind,
    /// Controller gains.
    pub gains: PiGains,
    /// Delay target in seconds.
    pub target: f64,
    /// Scalable coupling factor k (meaningful for the PI2 family).
    pub coupling: f64,
    /// Whether the AQM exposes a distinct scalable-side probability.
    pub coupled: bool,
}

/// Derive the fluid encoding from the scenario's actual AQM
/// configuration (gains, target, update interval, coupling — not the
/// presets), following the `pi2-validate` mapping table. RED, CoDel,
/// tail-drop and FQ have no PI-family fluid model: `Err` names them.
pub fn fluid_encoding(aqm: &AqmKind) -> Result<FluidEncoding, String> {
    let enc = |encoder, alpha_hz: f64, beta_hz: f64, t_update: Duration, target: Duration, coupling: f64, coupled| {
        FluidEncoding {
            encoder,
            gains: PiGains {
                alpha: alpha_hz,
                beta: beta_hz,
                t_update: t_update.as_secs_f64(),
            },
            target: target.as_secs_f64(),
            coupling,
            coupled,
        }
    };
    match aqm {
        AqmKind::Pi2(c) => Ok(enc(
            FluidControllerKind::Squared,
            c.alpha_hz,
            c.beta_hz,
            c.t_update,
            c.target,
            2.0,
            false,
        )),
        AqmKind::Coupled(c) => Ok(enc(
            FluidControllerKind::Squared,
            c.alpha_hz / c.k,
            c.beta_hz / c.k,
            c.t_update,
            c.target,
            c.k,
            true,
        )),
        AqmKind::DualQ(c) => Ok(enc(
            FluidControllerKind::Squared,
            c.alpha_hz,
            c.beta_hz,
            c.t_update,
            c.target,
            c.k,
            true,
        )),
        AqmKind::Pi(c) => Ok(enc(
            FluidControllerKind::Direct,
            c.alpha_hz,
            c.beta_hz,
            c.t_update,
            c.target,
            1.0,
            false,
        )),
        AqmKind::Pie(c) => Ok(enc(
            FluidControllerKind::TunedDirect,
            c.alpha_hz,
            c.beta_hz,
            c.t_update,
            c.target,
            1.0,
            false,
        )),
        other => Err(format!(
            "backend fluid/hybrid needs a PI-family AQM (pi, pi2, pie, coupled-pi2, dualpi2); '{}' has no fluid model",
            other.name()
        )),
    }
}

/// The fluid background aggregate for hybrid mode: wraps the flow-level
/// engine and implements the capacity-stealing coupling contract of
/// [`pi2_netsim::background::BackgroundAggregate`].
pub struct FluidBackground {
    sim: FlowLevelSim,
    /// Use the AQM's scalable-side probability for scalable classes
    /// (coupled AQMs); otherwise every class sees the classic one.
    coupled: bool,
    flows: u64,
    fingerprint: u64,
}

impl FluidBackground {
    /// Build the aggregate for `groups` behind an `aqm` at `rate_bps`.
    pub fn new(groups: &[BgGroup], aqm: &AqmKind, rate_bps: u64) -> Result<Self, String> {
        let encoding = fluid_encoding(aqm)?;
        let classes: Vec<FlowClass> = groups
            .iter()
            .filter(|g| g.count > 0)
            .map(|g| FlowClass::new(g.count as f64, cc_fluid_kind(g.cc), g.rtt.as_secs_f64()))
            .collect();
        if classes.is_empty() {
            return Err("hybrid background needs at least one flow".to_string());
        }
        let mut h = SchemaHasher::new();
        h.update_u64(classes.len() as u64);
        for (g, cl) in groups.iter().filter(|g| g.count > 0).zip(&classes) {
            h.update_u64(g.count as u64);
            h.update_u64(matches!(cl.tcp, FluidTcpKind::Scalable) as u64);
            h.update_u64(g.rtt.as_nanos() as u64);
            h.update_str(&g.label);
        }
        let flows = groups.iter().map(|g| g.count as u64).sum();
        let cfg = FlowLevelConfig {
            capacity_pps: rate_bps as f64 / 8.0 / PKT_BYTES,
            classes,
            encoder: encoding.encoder,
            gains: encoding.gains,
            target: encoding.target,
            coupling: encoding.coupling,
            dt: 0.001,
        };
        Ok(FluidBackground {
            sim: FlowLevelSim::new(cfg),
            coupled: encoding.coupled,
            flows,
            fingerprint: h.finish(),
        })
    }
}

impl BackgroundAggregate for FluidBackground {
    fn on_tick(
        &mut self,
        dt: Duration,
        classic_prob: f64,
        scalable_prob: f64,
        qdelay: Duration,
    ) -> u64 {
        let scal = if self.coupled { scalable_prob } else { classic_prob };
        let pps = self.sim.tick_external(
            dt.as_secs_f64(),
            classic_prob,
            scal,
            qdelay.as_secs_f64(),
        );
        (pps * PKT_BYTES * 8.0).round() as u64
    }

    fn flow_count(&self) -> u64 {
        self.flows
    }

    fn schema_fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn save_ckpt(&self, w: &mut CkptWriter) {
        let s = self.sim.state();
        w.f64(s.t);
        w.u64(s.steps);
        w.f64(s.q);
        w.f64(s.p_prime);
        w.f64(s.prev_qdelay);
        w.usize(s.w.len());
        for &wi in &s.w {
            w.f64(wi);
        }
        w.u64(s.alloc_events);
    }

    fn restore_ckpt(&mut self, r: &mut CkptReader) -> Result<(), CkptError> {
        let t = r.f64()?;
        let steps = r.u64()?;
        let q = r.f64()?;
        let p_prime = r.f64()?;
        let prev_qdelay = r.f64()?;
        let n = r.usize()?;
        if n != self.sim.config().classes.len() {
            return Err(CkptError::Corrupt("background class count mismatch"));
        }
        let mut w = Vec::with_capacity(n);
        for _ in 0..n {
            w.push(r.f64()?);
        }
        let alloc_events = r.u64()?;
        self.sim.restore_state(&FlowLevelState {
            t,
            steps,
            q,
            p_prime,
            prev_qdelay,
            w,
            alloc_events,
        });
        Ok(())
    }
}

/// Post-run background accounting captured into [`RunResult`].
#[derive(Clone, Debug)]
pub struct BackgroundRun {
    /// Flows the aggregate represented.
    pub flow_count: u64,
    /// Total background volume served, bytes (full run).
    pub bg_bytes: f64,
    /// Coupling ticks taken.
    pub ticks: u64,
    /// The aggregate-rate counter track: `(t seconds, granted bits/s)`.
    pub series: Vec<(f64, u64)>,
}

impl BackgroundRun {
    /// Background bits served from `from_s` to the end of the run,
    /// integrated over the rate track.
    pub fn bits_after(&self, from_s: f64) -> f64 {
        let mut bits = 0.0;
        for i in 0..self.series.len() {
            let (t, bps) = self.series[i];
            let dt = if i + 1 < self.series.len() {
                self.series[i + 1].0 - t
            } else if i > 0 {
                t - self.series[i - 1].0
            } else {
                0.0
            };
            if t >= from_s {
                bits += bps as f64 * dt;
            }
        }
        bits
    }
}

/// The four conformance metrics every backend reduces to.
#[derive(Clone, Copy, Debug)]
pub struct BackendSummary {
    /// Bottleneck utilization over the measurement window, 0..1
    /// (hybrid: foreground + background against nominal capacity).
    pub utilization: f64,
    /// Mean queue delay in seconds (packet: mean sojourn minus one
    /// serialization time, as in `pi2-validate`).
    pub qdelay_s: f64,
    /// Congestion-signal probability (marked+dropped over sent).
    pub signal: f64,
    /// Max/min per-flow mean rate (packet side: foreground flows).
    pub rate_ratio: f64,
}

/// Reduce a packet or hybrid [`RunResult`] to the conformance metrics.
/// `capacity_bps` is the scenario's nominal bottleneck rate; `warmup_s`
/// the measurement-window start.
pub fn summarize_run(run: &RunResult, capacity_bps: u64, warmup_s: f64) -> BackendSummary {
    let span = run.monitor.measurement_span();
    let span_s = span.as_secs_f64();
    let (mut sent, mut signalled) = (0u64, 0u64);
    let mut tputs: Vec<f64> = Vec::new();
    let mut fg_bits = 0.0;
    for f in &run.monitor.flows {
        sent += f.sent_pkts_postwarm;
        signalled += f.dropped_postwarm + f.marked_postwarm;
        let t = f.mean_tput_mbps(span);
        fg_bits += t * 1e6 * span_s;
        if t > 0.0 {
            tputs.push(t);
        }
    }
    let signal = if sent == 0 {
        0.0
    } else {
        signalled as f64 / sent as f64
    };
    // Sojourns include one serialization time at the (possibly reduced)
    // foreground drain rate; remove it, as the validate harness does.
    let serialization = PKT_BYTES * 8.0 / run.rate_bps.max(1) as f64;
    let qdelay_s = if run.monitor.sojourn_ms.is_empty() {
        0.0
    } else {
        let mean_ms = run.monitor.sojourn_ms.iter().map(|&v| v as f64).sum::<f64>()
            / run.monitor.sojourn_ms.len() as f64;
        (mean_ms / 1e3 - serialization).max(0.0)
    };
    let bg_bits = run
        .background
        .as_ref()
        .map_or(0.0, |bg| bg.bits_after(warmup_s));
    let utilization = if span_s > 0.0 && capacity_bps > 0 {
        ((fg_bits + bg_bits) / (capacity_bps as f64 * span_s)).min(1.0)
    } else {
        0.0
    };
    let rate_ratio = match (
        tputs.iter().cloned().fold(f64::INFINITY, f64::min),
        tputs.iter().cloned().fold(0.0f64, f64::max),
    ) {
        (min, max) if min.is_finite() && min > 0.0 => max / min,
        _ => f64::INFINITY,
    };
    BackendSummary {
        utilization,
        qdelay_s,
        signal,
        rate_ratio,
    }
}

/// The output of a fluid-backend run.
#[derive(Clone, Debug)]
pub struct FluidRunResult {
    /// Class labels, in scenario order (TCP groups then UDP groups).
    pub labels: Vec<String>,
    /// Flows per class.
    pub counts: Vec<f64>,
    /// Mean per-flow rate of each class over the measurement window, pps.
    pub class_rates_pps: Vec<f64>,
    /// Total flows simulated.
    pub flow_count: u64,
    /// Sampled trajectory (`sample_interval` spacing).
    pub samples: Vec<FlowLevelSample>,
    /// Rate reallocation events taken by the engine.
    pub alloc_events: u64,
    /// The measurement-window conformance metrics.
    pub summary: BackendSummary,
}

/// Execute a scenario on the fluid backend: compile its flow groups onto
/// the flow-level engine and integrate, no packet events at all. TCP
/// groups become responsive classes; UDP groups become rate-capped
/// classes (unresponsive up to their CBR rate). Scheduled rate/RTT
/// changes and impairments have no fluid equivalent and are rejected.
pub fn run_fluid(sc: &Scenario) -> Result<FluidRunResult, String> {
    let encoding = fluid_encoding(&sc.aqm)?;
    if !sc.rate_changes.is_empty() || !sc.rtt_changes.is_empty() {
        return Err("backend fluid does not support scheduled rate/RTT changes".to_string());
    }
    if sc.impairments.is_some_and(|i| !i.is_off()) {
        return Err("backend fluid does not support path impairments".to_string());
    }
    let mut classes = Vec::new();
    let mut labels = Vec::new();
    for g in &sc.tcp {
        if g.count == 0 {
            continue;
        }
        let mut cl = FlowClass::new(g.count as f64, cc_fluid_kind(g.cc), g.rtt.as_secs_f64());
        cl.start = g.start.as_secs_f64();
        cl.stop = g.stop.map(|t| t.as_secs_f64());
        classes.push(cl);
        labels.push(g.label.clone());
    }
    for g in &sc.udp {
        if g.count == 0 {
            continue;
        }
        let mut cl = FlowClass::new(g.count as f64, FluidTcpKind::Reno, g.rtt.as_secs_f64());
        cl.rate_cap_pps = Some(g.rate_bps as f64 / 8.0 / PKT_BYTES);
        cl.start = g.start.as_secs_f64();
        cl.stop = g.stop.map(|t| t.as_secs_f64());
        classes.push(cl);
        labels.push(g.label.clone());
    }
    if classes.is_empty() {
        return Err("backend fluid needs at least one flow group".to_string());
    }
    let counts: Vec<f64> = classes.iter().map(|c| c.count).collect();
    let flow_count = counts.iter().sum::<f64>() as u64;
    let cfg = FlowLevelConfig {
        capacity_pps: sc.rate_bps as f64 / 8.0 / PKT_BYTES,
        classes,
        encoder: encoding.encoder,
        gains: encoding.gains,
        target: encoding.target,
        coupling: encoding.coupling,
        dt: 0.001,
    };
    let mut sim = FlowLevelSim::new(cfg);
    let warmup = sc.warmup.as_secs_f64();
    let t_end = sc.duration.as_secs_f64();
    let sample_every = sc.sample_interval.as_secs_f64();
    let mut samples = sim.run(warmup.min(t_end), sample_every);
    sim.begin_measurement();
    samples.extend(sim.run(t_end, sample_every));
    let class_rates_pps = sim.mean_class_rates_pps();

    let meas: Vec<&FlowLevelSample> = samples.iter().filter(|s| s.t >= warmup).collect();
    let n = meas.len().max(1) as f64;
    let utilization = meas.iter().map(|s| s.util).sum::<f64>() / n;
    let qdelay_s = meas.iter().map(|s| s.qdelay).sum::<f64>() / n;
    let signal = meas.iter().map(|s| s.signal).sum::<f64>() / n;
    let active: Vec<f64> = class_rates_pps.iter().cloned().filter(|&r| r > 0.0).collect();
    let rate_ratio = match (
        active.iter().cloned().fold(f64::INFINITY, f64::min),
        active.iter().cloned().fold(0.0f64, f64::max),
    ) {
        (min, max) if min.is_finite() && min > 0.0 => max / min,
        _ => f64::INFINITY,
    };
    Ok(FluidRunResult {
        labels,
        counts,
        class_rates_pps,
        flow_count,
        alloc_events: sim.alloc_events(),
        samples,
        summary: BackendSummary {
            utilization,
            qdelay_s,
            signal,
            rate_ratio,
        },
    })
}

/// Convenience: the warmup-relative summary of a packet/hybrid scenario
/// run (pairs with [`run_fluid`]'s `summary` for conformance checks).
pub fn summarize_scenario_run(sc: &Scenario, run: &RunResult) -> BackendSummary {
    summarize_run(run, sc.rate_bps, sc.warmup.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FlowGroup;
    use pi2_simcore::Time;
    use pi2_transport::EcnSetting;

    fn base_scenario() -> Scenario {
        let mut sc = Scenario::new(AqmKind::pi2_default(), 12_000_000);
        sc.tcp.push(FlowGroup::new(
            5,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "reno",
            Duration::from_millis(50),
        ));
        sc.duration = Time::from_secs(60);
        sc.warmup = Duration::from_secs(20);
        sc
    }

    #[test]
    fn backend_parse_round_trips() {
        for b in [Backend::Packet, Backend::Fluid, Backend::Hybrid] {
            assert_eq!(Backend::parse(b.name()), Some(b));
        }
        assert_eq!(Backend::parse("quantum"), None);
    }

    #[test]
    fn fluid_backend_matches_packet_equilibrium() {
        let sc = base_scenario();
        let fluid = run_fluid(&sc).unwrap();
        assert_eq!(fluid.flow_count, 5);
        // Settles near the 20 ms target with a saturated link.
        assert!(
            (fluid.summary.qdelay_s - 0.020).abs() < 0.006,
            "fluid qdelay {:.1} ms",
            fluid.summary.qdelay_s * 1e3
        );
        assert!(fluid.summary.utilization > 0.9);
        // Identical classes: ratio exactly 1.
        assert!((fluid.summary.rate_ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fluid_backend_rejects_unsupported_aqm() {
        let mut sc = base_scenario();
        sc.aqm = AqmKind::TailDrop;
        assert!(run_fluid(&sc).is_err());
    }

    #[test]
    fn hybrid_background_steals_capacity() {
        let mut sc = base_scenario();
        sc.backend = Backend::Hybrid;
        sc.tcp[0].count = 2;
        sc.background = vec![BgGroup::new(3, CcKind::Reno, Duration::from_millis(50), "bg")];
        let run = sc.run();
        let bg = run.background.as_ref().expect("hybrid run records background");
        assert_eq!(bg.flow_count, 3);
        assert!(bg.ticks > 100, "coupling ticked {} times", bg.ticks);
        assert!(bg.bg_bytes > 1e6, "background moved {} bytes", bg.bg_bytes);
        // The foreground drain rate ends up visibly below capacity.
        assert!(run.rate_bps < sc.rate_bps);
        // And the blended utilization is still near full.
        let s = summarize_scenario_run(&sc, &run);
        assert!(s.utilization > 0.85, "hybrid utilization {:.3}", s.utilization);
    }

    #[test]
    fn hybrid_with_empty_background_is_identical_to_packet() {
        let mut hybrid = base_scenario();
        hybrid.backend = Backend::Hybrid;
        hybrid.duration = Time::from_secs(20);
        hybrid.warmup = Duration::from_secs(5);
        let mut packet = hybrid.clone();
        packet.backend = Backend::Packet;
        let a = hybrid.run();
        let b = packet.run();
        assert!(a.background.is_none(), "no flows → no aggregate attached");
        assert_eq!(a.monitor.sojourn_ms.len(), b.monitor.sojourn_ms.len());
        assert_eq!(
            a.monitor.flows[0].dequeued_bytes,
            b.monitor.flows[0].dequeued_bytes
        );
    }

    #[test]
    fn million_flow_fluid_run_is_fast_and_finite() {
        let mut sc = Scenario::new(AqmKind::pi2_default(), 100_000_000_000);
        sc.tcp.push(FlowGroup::new(
            1_000_000,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "reno",
            Duration::from_millis(50),
        ));
        sc.duration = Time::from_secs(60);
        sc.warmup = Duration::from_secs(20);
        let fluid = run_fluid(&sc).unwrap();
        assert_eq!(fluid.flow_count, 1_000_000);
        assert!(fluid.summary.qdelay_s.is_finite());
        assert!(fluid.summary.utilization > 0.5);
    }
}
