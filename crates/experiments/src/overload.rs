//! Overload behaviour (paper §5, "Fewer Heuristics").
//!
//! PIE's Linux implementation handles overload with special cases (drop
//! ECN above 10 %, Δp clamps, the 250 ms rule). PI2 replaces them with a
//! flat 25 % cap on the Classic probability: "the queue will be allowed
//! to grow over the target if it cannot be controlled with this maximum
//! drop probability. Then, if needed, tail-drop will control
//! non-responsive traffic." This sweep drives a bottleneck with rising
//! unresponsive UDP load and records exactly that hand-over.

use crate::scenario::{AqmKind, FlowGroup, Scenario, UdpGroup};
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting};

/// One point of the overload sweep.
#[derive(Clone, Debug)]
pub struct OverloadPoint {
    /// AQM name.
    pub aqm: &'static str,
    /// Offered UDP load as a fraction of link capacity.
    pub udp_load: f64,
    /// Queue-delay summary (ms).
    pub delay: Summary,
    /// Mean applied probability on the UDP packets (%).
    pub udp_prob_pct: f64,
    /// Fraction of UDP packets lost to AQM drops.
    pub aqm_loss: f64,
    /// Fraction of UDP packets lost to buffer overflow (tail-drop).
    pub overflow_loss: f64,
    /// Remaining TCP throughput (Mb/s).
    pub tcp_mbps: f64,
}

/// Run one overload point: 2 Reno flows + one UDP source at
/// `udp_load × capacity` on a 10 Mb/s link with a *finite* buffer
/// (100 ms worth), so the tail-drop backstop is observable.
pub fn run_point(aqm: AqmKind, udp_load: f64, seed: u64) -> OverloadPoint {
    let rate: u64 = 10_000_000;
    let rtt = Duration::from_millis(20);
    let mut sc = Scenario::new(aqm, rate);
    sc.buffer_bytes = (rate as f64 * 0.100 / 8.0) as usize; // 100 ms buffer
    sc.tcp.push(FlowGroup::new(
        2,
        CcKind::Reno,
        EcnSetting::NotEcn,
        "tcp",
        rtt,
    ));
    sc.udp.push(UdpGroup {
        count: 1,
        rate_bps: (rate as f64 * udp_load) as u64,
        pkt_size: 1500,
        label: "udp".to_string(),
        rtt,
        start: Time::ZERO,
        stop: None,
    });
    sc.duration = Time::from_secs(60);
    sc.warmup = Duration::from_secs(20);
    sc.seed = seed;
    let r = sc.run();
    let udp = &r.monitor.flows[2];
    // Buffer-overflow drops are recorded with probability exactly 1.0 by
    // the queue, while every AQM decision here carries the controller's
    // probability (PI2 caps at 0.25; PIE never reaches 1.0 before the
    // buffer does). Filtering p < 1 isolates the AQM's own decisions.
    let probs = r.monitor.pooled_probs("udp");
    let aqm_probs: Vec<f64> = probs
        .iter()
        .map(|&p| p as f64)
        .filter(|&p| p < 0.999)
        .collect();
    let mean_p = pi2_stats::mean(&aqm_probs);
    let overflow_share = if probs.is_empty() {
        0.0
    } else {
        (probs.len() - aqm_probs.len()) as f64 / probs.len() as f64
    };
    let total_loss = udp.dropped as f64 / udp.sent_pkts.max(1) as f64;
    OverloadPoint {
        aqm: r.aqm,
        udp_load,
        delay: r.delay_summary(),
        udp_prob_pct: 100.0 * mean_p,
        aqm_loss: (total_loss - overflow_share).max(0.0),
        overflow_loss: overflow_share,
        tcp_mbps: r.tput_mbps("tcp"),
    }
}

/// The sweep: UDP offered load from 50 % to 200 % of capacity, PIE vs PI2.
pub fn sweep(seed: u64) -> Vec<OverloadPoint> {
    let mut out = Vec::new();
    for &load in &[0.5, 0.8, 1.0, 1.2, 1.5, 2.0] {
        out.push(run_point(AqmKind::pie_default(), load, seed));
        out.push(run_point(AqmKind::pi2_default(), load, seed));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi2_probability_saturates_at_its_cap() {
        // 2x overload: the Classic probability must sit at the 25% cap.
        let pt = run_point(AqmKind::pi2_default(), 2.0, 7);
        assert!(
            (20.0..=25.5).contains(&pt.udp_prob_pct),
            "AQM-applied probability {:.1}% should be pinned at the 25% cap",
            pt.udp_prob_pct
        );
        // ... and tail-drop supplies the rest of the loss.
        assert!(
            pt.overflow_loss > 0.1,
            "expected tail-drop share, got {:.3}",
            pt.overflow_loss
        );
        // The queue grows past target toward the buffer limit.
        assert!(
            pt.delay.p50 > 40.0,
            "queue should exceed target under overload, got {:.1} ms",
            pt.delay.p50
        );
    }

    #[test]
    fn moderate_load_stays_on_target() {
        let pt = run_point(AqmKind::pi2_default(), 0.5, 7);
        assert!(
            (5.0..40.0).contains(&pt.delay.p50),
            "at 50% UDP load the AQM should still hold target, got {:.1} ms",
            pt.delay.p50
        );
        assert!(pt.overflow_loss < 0.01);
        assert!(pt.tcp_mbps > 2.0, "TCP got {:.1} Mb/s", pt.tcp_mbps);
    }
}
