//! Figure 14: CDFs of queue delay at 5 ms and 20 ms targets.
//!
//! Two panels — (a) 20 TCP flows, (b) 5 TCP + 2 UDP — each run with the
//! delay target at 5 ms (upper row) and 20 ms (lower row), PIE vs PI2.
//! The paper's claim is a negative one: the CDFs are essentially the
//! same, i.e. PI2's simplicity costs nothing in delay distribution.

use crate::scenario::{AqmKind, FlowGroup, Scenario, UdpGroup};
use pi2_aqm::{Pi2Config, PieConfig};
use pi2_simcore::{Duration, Time};
use pi2_stats::Cdf;
use pi2_transport::{CcKind, EcnSetting};

/// One AQM × target × panel result.
#[derive(Clone, Debug)]
pub struct Fig14Run {
    /// AQM name.
    pub aqm: &'static str,
    /// Delay target in ms (5 or 20).
    pub target_ms: i64,
    /// Panel: true for the UDP mix (b), false for 20 TCP (a).
    pub udp_mix: bool,
    /// The per-packet queue-delay CDF.
    pub cdf: Cdf,
}

/// Run one combination.
pub fn run_one(pie: bool, target_ms: i64, udp_mix: bool, seed: u64) -> Fig14Run {
    let target = Duration::from_millis(target_ms);
    let aqm = if pie {
        AqmKind::Pie(PieConfig {
            target,
            ..PieConfig::paper_default()
        })
    } else {
        AqmKind::Pi2(Pi2Config {
            target,
            ..Pi2Config::default()
        })
    };
    let rtt = Duration::from_millis(100);
    let mut sc = Scenario::new(aqm, 10_000_000);
    if udp_mix {
        sc.tcp.push(FlowGroup::new(
            5,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "reno",
            rtt,
        ));
        sc.udp.push(UdpGroup::paper_probes(2, rtt));
    } else {
        sc.tcp.push(FlowGroup::new(
            20,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "reno",
            rtt,
        ));
    }
    sc.duration = Time::from_secs(100);
    sc.warmup = Duration::from_secs(20);
    sc.seed = seed;
    let r = sc.run();
    Fig14Run {
        aqm: if pie { "pie" } else { "pi2" },
        target_ms,
        udp_mix,
        cdf: Cdf::from_f32(&r.monitor.sojourn_ms),
    }
}

/// The full figure: 2 AQMs × 2 targets × 2 panels.
pub fn fig14() -> Vec<Fig14Run> {
    let mut out = Vec::new();
    for &udp_mix in &[false, true] {
        for &target in &[5i64, 20] {
            out.push(run_one(true, target, udp_mix, 14));
            out.push(run_one(false, target, udp_mix, 14));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_target_shifts_the_cdf_left() {
        let d5 = run_one(false, 5, false, 7);
        let d20 = run_one(false, 20, false, 7);
        let m5 = d5.cdf.quantile(0.5);
        let m20 = d20.cdf.quantile(0.5);
        assert!(
            m5 < m20,
            "5 ms target median {m5:.1} ms should be below 20 ms target median {m20:.1} ms"
        );
    }
}
