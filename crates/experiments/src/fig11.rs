//! Figure 11: queue delay and total throughput under three traffic mixes
//! (the stability tests repeated from Pan et al.'s PIE paper).
//!
//! Link 10 Mb/s, RTT 100 ms, 100 s:
//! (a) light: 5 TCP flows; (b) heavy: 50 TCP flows;
//! (c) mixed: 5 TCP + 2 × 6 Mb/s UDP (overload).

use crate::scenario::{AqmKind, FlowGroup, Scenario, UdpGroup};
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting};

/// The three traffic mixes of the figure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TrafficMix {
    /// 5 TCP flows.
    Light,
    /// 50 TCP flows.
    Heavy,
    /// 5 TCP + 2 UDP at 6 Mb/s each.
    Mixed,
}

impl TrafficMix {
    /// All three, in figure order.
    pub fn all() -> [TrafficMix; 3] {
        [TrafficMix::Light, TrafficMix::Heavy, TrafficMix::Mixed]
    }

    /// Panel label.
    pub fn label(self) -> &'static str {
        match self {
            TrafficMix::Light => "5 TCP",
            TrafficMix::Heavy => "50 TCP",
            TrafficMix::Mixed => "5 TCP + 2 UDP",
        }
    }
}

/// One AQM × mix result.
#[derive(Clone, Debug)]
pub struct Fig11Run {
    /// AQM name.
    pub aqm: &'static str,
    /// Mix.
    pub mix: TrafficMix,
    /// `(t, queue delay ms)`.
    pub qdelay: Vec<(f64, f64)>,
    /// `(t, total throughput Mb/s)`.
    pub tput: Vec<(f64, f64)>,
    /// Per-packet delay summary (post warm-up).
    pub delay: Summary,
    /// Peak of the sampled queue delay over the whole run, including the
    /// start-up overshoot the figure highlights.
    pub peak_ms: f64,
    /// Utilization summary (percent).
    pub util: Summary,
}

/// Run one AQM under one mix.
pub fn run_one(aqm: AqmKind, mix: TrafficMix, seed: u64) -> Fig11Run {
    let rtt = Duration::from_millis(100);
    let mut sc = Scenario::new(aqm, 10_000_000);
    let tcp_count = match mix {
        TrafficMix::Light | TrafficMix::Mixed => 5,
        TrafficMix::Heavy => 50,
    };
    sc.tcp.push(FlowGroup::new(
        tcp_count,
        CcKind::Reno,
        EcnSetting::NotEcn,
        "reno",
        rtt,
    ));
    if mix == TrafficMix::Mixed {
        sc.udp.push(UdpGroup::paper_probes(2, rtt));
    }
    sc.duration = Time::from_secs(100);
    sc.warmup = Duration::from_secs(20);
    sc.seed = seed;
    let r = sc.run();
    let peak_ms = r
        .qdelay_series()
        .iter()
        .map(|&(_, d)| d)
        .fold(0.0, f64::max);
    Fig11Run {
        aqm: r.aqm,
        mix,
        qdelay: r.qdelay_series().to_vec(),
        tput: r.tput_series().to_vec(),
        delay: r.delay_summary(),
        peak_ms,
        util: r.util_summary(),
    }
}

/// The full figure: PIE and PI2 across all three mixes.
pub fn fig11() -> Vec<Fig11Run> {
    let mut out = Vec::new();
    for mix in TrafficMix::all() {
        out.push(run_one(AqmKind::pie_default(), mix, 11));
        out.push(run_one(AqmKind::pi2_default(), mix, 11));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_mix_keeps_queue_finite() {
        // 5 TCP + 12 Mb/s of UDP on a 10 Mb/s link: the AQM saturates at
        // its 25 % cap and tail-drop takes over; the queue must stay
        // bounded by the buffer, and UDP keeps most of the link.
        let run = run_one(AqmKind::pi2_default(), TrafficMix::Mixed, 3);
        assert!(run.delay.n > 0);
        assert!(run.peak_ms.is_finite());
        // Post-warmup utilization stays high — overload fills the link.
        assert!(run.util.mean > 90.0, "util {:.1}%", run.util.mean);
    }

    #[test]
    fn heavy_load_has_higher_probability_than_light() {
        // 50 flows need a much stronger signal than 5 (p' ∝ N).
        let light = run_one(AqmKind::pi2_default(), TrafficMix::Light, 4);
        let heavy = run_one(AqmKind::pi2_default(), TrafficMix::Heavy, 4);
        // Compare via delay: both controlled near target.
        assert!(light.delay.p50 < 60.0);
        assert!(heavy.delay.p50 < 60.0);
    }
}
