//! Realistic traffic workload generators: heavy-tailed short-flow
//! ("mice") arrival processes of the kind internet-scale AQM evaluation
//! needs — Poisson arrivals with bounded-Pareto sizes, the classic
//! web/RPC object model also used by `shortflows`.
//!
//! Generators are pure functions of their configuration: the arrival
//! stream is pre-generated from a salted seed before the simulation
//! starts, so the same workload lands on every AQM/topology cell of a
//! sweep (paired comparison) and a run is reproducible from its
//! [`MiceWorkload`] alone. The randomized conformance suite
//! (`tests/proptests.rs`, `proptests` feature) pins seed determinism,
//! the Pareto size moments and arrival-rate scaling.

use pi2_simcore::{Rng, Time};

/// Salt folded into workload seeds so arrival streams never alias the
/// simulator's own root RNG stream (same idiom as `shortflows`).
const MICE_SEED_SALT: u64 = 0x417C_E5ED;

/// A heavy-tailed short-flow workload: Poisson arrivals, bounded-Pareto
/// flow sizes.
#[derive(Clone, Debug)]
pub struct MiceWorkload {
    /// Mean flow arrival rate (flows per second, Poisson process).
    pub arrivals_per_sec: f64,
    /// Bounded-Pareto size distribution (shape α, min packets, max
    /// packets).
    pub size_dist: (f64, f64, f64),
    /// Earliest possible arrival.
    pub start: Time,
    /// Arrivals stop here (flows launched before it may finish later).
    pub horizon: Time,
    /// Generator seed (salted internally).
    pub seed: u64,
}

impl MiceWorkload {
    /// A web/RPC-like default: 8 flows/s, α = 1.2 sizes between 2 and
    /// 200 packets.
    pub fn web(start: Time, horizon: Time, seed: u64) -> Self {
        MiceWorkload {
            arrivals_per_sec: 8.0,
            size_dist: (1.2, 2.0, 200.0),
            start,
            horizon,
            seed,
        }
    }
}

/// One generated short flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mouse {
    /// Arrival (flow start) time.
    pub at: Time,
    /// Flow size in packets (≥ 1).
    pub size_pkts: u64,
}

/// Generate the complete arrival stream for a workload: strictly
/// increasing arrival times in `[start, horizon)` with exponential
/// inter-arrivals, each carrying a rounded bounded-Pareto size. The
/// output is a pure function of the configuration.
pub fn mice_arrivals(w: &MiceWorkload) -> Vec<Mouse> {
    assert!(w.arrivals_per_sec > 0.0, "arrival rate must be positive");
    let (alpha, lo, hi) = w.size_dist;
    let mut gen = Rng::new(w.seed ^ MICE_SEED_SALT);
    let horizon = w.horizon.as_secs_f64();
    let mut t = w.start.as_secs_f64();
    let mut out = Vec::new();
    loop {
        t += gen.exponential(1.0 / w.arrivals_per_sec);
        if t >= horizon {
            break;
        }
        let size_pkts = gen.bounded_pareto(alpha, lo, hi).round().max(1.0) as u64;
        out.push(Mouse {
            at: Time::from_secs_f64(t),
            size_pkts,
        });
    }
    out
}

/// Analytic mean of the bounded Pareto(α, L, H) distribution — the
/// reference the proptests hold the empirical size moments against.
///
/// # Panics
/// Panics for α = 1 (the log case, which no workload here uses) or a
/// degenerate bound order.
pub fn bounded_pareto_mean(alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo > 0.0 && hi > lo, "bounds must satisfy 0 < lo < hi");
    assert!(
        (alpha - 1.0).abs() > 1e-9,
        "α = 1 needs the logarithmic form"
    );
    let la = lo.powf(alpha);
    (la / (1.0 - (lo / hi).powf(alpha))) * (alpha / (alpha - 1.0))
        * (1.0 / lo.powf(alpha - 1.0) - 1.0 / hi.powf(alpha - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn web() -> MiceWorkload {
        MiceWorkload::web(Time::from_secs(1), Time::from_secs(61), 42)
    }

    #[test]
    fn arrivals_are_ordered_bounded_and_sized() {
        let mice = mice_arrivals(&web());
        assert!(mice.len() > 200, "60 s at 8/s should launch ~480 flows");
        let mut prev = Time::from_secs(1);
        for m in &mice {
            assert!(m.at >= prev, "arrivals must be non-decreasing");
            assert!(m.at < Time::from_secs(61));
            assert!((1..=200).contains(&m.size_pkts));
            prev = m.at;
        }
    }

    #[test]
    fn same_config_same_stream() {
        assert_eq!(mice_arrivals(&web()), mice_arrivals(&web()));
        let other = MiceWorkload { seed: 43, ..web() };
        assert_ne!(mice_arrivals(&web()), mice_arrivals(&other));
    }

    #[test]
    fn pareto_mean_matches_a_hand_computed_case() {
        // α=2, L=1, H=∞-ish: mean → α/(α-1)·L = 2. With H=1000 the
        // truncation correction is tiny.
        let m = bounded_pareto_mean(2.0, 1.0, 1000.0);
        assert!((m - 2.0).abs() < 0.01, "mean {m}");
    }
}
