//! Multi-hop topology & workload scenarios: parking-lot chains and a
//! small access/core tree under heavy-tailed short-flow ("mice")
//! cross-traffic, with mixed Classic/Scalable long-flow populations.
//!
//! The paper evaluates PI2 and DualPI2 on a single dumbbell; this family
//! checks that the coexistence story survives the two standard multi-hop
//! stress shapes from the AQM evaluation literature:
//!
//! * **parking-lot-3** — long Cubic and DCTCP flows traverse three
//!   bottlenecks in series while Poisson/bounded-Pareto web mice
//!   ([`crate::workload`]) hammer each hop as single-hop cross traffic;
//! * **access-core-2** — two access links with different base RTTs
//!   (20 ms / 80 ms) funnel into one slower shared core, mice arriving
//!   at the core only.
//!
//! Every run reports per-hop egress accounting (Jain fairness across the
//! long flows crossing each hop, per-class egress rates), the end-to-end
//! per-class throughput ratio (the Section 6 balance criterion), and the
//! mice flow-completion-time P50/P95/P99 through a [`pi2_obs::Histogram`]
//! — exposed on the command line as `pi2sim --scenario topology`.

use crate::scenario::AqmKind;
use crate::workload::{mice_arrivals, MiceWorkload};
use pi2_netsim::{
    AuditSink, FlowId, MonitorConfig, PathConf, QueueConfig, Sim, SimConfig, Topology,
};
use pi2_obs::Histogram;
use pi2_simcore::{Duration, Time};
use pi2_stats::jain_fairness;
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

/// Total simulated time, seconds.
pub const DURATION_S: u64 = 60;
/// Warm-up excluded from aggregates, seconds.
pub const WARMUP_S: u64 = 10;
/// Mice arrivals start here (after warm-up so every FCT is post-warm).
pub const MICE_START_S: u64 = 10;
/// Mice arrivals stop here (leaves a drain window before the run ends).
pub const MICE_STOP_S: u64 = 55;
/// Mean mice arrival rate per entry path (flows/s, Poisson).
pub const MICE_PER_SEC: f64 = 8.0;

/// Decorrelates each entry path's arrival stream from the simulator's
/// root RNG stream and from the other paths'.
const MICE_PATH_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which multi-hop layout a cell runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Three 20 Mb/s bottlenecks in series; long flows end-to-end, mice
    /// entering at every hop.
    ParkingLot3,
    /// Two 40 Mb/s access links (20 ms / 80 ms RTT) into a 20 Mb/s
    /// shared core; mice entering at the core.
    AccessCore2,
}

impl TopologyKind {
    /// Display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::ParkingLot3 => "parking-lot-3",
            TopologyKind::AccessCore2 => "access-core-2",
        }
    }

    /// The static layout.
    pub fn build(&self) -> Topology {
        match self {
            TopologyKind::ParkingLot3 => Topology::parking_lot(3, Duration::from_millis(5)),
            TopologyKind::AccessCore2 => Topology::access_core(2, Duration::from_millis(2)),
        }
    }

    /// Link rate of a hop, bits/s.
    pub fn hop_rate_bps(&self, hop: u32) -> u64 {
        match self {
            TopologyKind::ParkingLot3 => 20_000_000,
            TopologyKind::AccessCore2 => {
                if hop < 2 {
                    40_000_000
                } else {
                    20_000_000
                }
            }
        }
    }

    /// The long-flow population: `(label, cc, ecn, path name, base RTT)`.
    fn long_flows(&self) -> Vec<(&'static str, CcKind, EcnSetting, &'static str, Duration)> {
        let rtt40 = Duration::from_millis(40);
        match self {
            TopologyKind::ParkingLot3 => vec![
                ("classic", CcKind::Cubic, EcnSetting::NotEcn, "e2e", rtt40),
                ("classic", CcKind::Cubic, EcnSetting::NotEcn, "e2e", rtt40),
                ("scalable", CcKind::Dctcp, EcnSetting::Scalable, "e2e", rtt40),
                ("scalable", CcKind::Dctcp, EcnSetting::Scalable, "e2e", rtt40),
            ],
            TopologyKind::AccessCore2 => {
                let near = Duration::from_millis(20);
                let far = Duration::from_millis(80);
                vec![
                    ("classic", CcKind::Cubic, EcnSetting::NotEcn, "leaf0", near),
                    ("scalable", CcKind::Dctcp, EcnSetting::Scalable, "leaf0", near),
                    ("classic", CcKind::Cubic, EcnSetting::NotEcn, "leaf1", far),
                    ("scalable", CcKind::Dctcp, EcnSetting::Scalable, "leaf1", far),
                ]
            }
        }
    }

    /// The paths mice workloads enter on.
    fn mice_paths(&self) -> &'static [&'static str] {
        match self {
            TopologyKind::ParkingLot3 => &["cross0", "cross1", "cross2"],
            TopologyKind::AccessCore2 => &["core"],
        }
    }
}

/// Per-hop egress accounting for one run (post-warm-up bytes only).
#[derive(Clone, Debug)]
pub struct HopReport {
    /// Hop id (0 = the primary, monitored bottleneck).
    pub hop: u32,
    /// Jain fairness across the long flows routed through this hop.
    pub fairness: f64,
    /// Post-warm-up egress rate of Classic (Cubic) long flows, Mb/s.
    pub classic_mbps: f64,
    /// Post-warm-up egress rate of Scalable (DCTCP) long flows, Mb/s.
    pub scalable_mbps: f64,
    /// Post-warm-up egress rate of the mice, Mb/s.
    pub mice_mbps: f64,
}

/// One topology × AQM measurement.
#[derive(Clone, Debug)]
pub struct TopologyRun {
    /// Layout name.
    pub topology: &'static str,
    /// AQM name (every hop runs the same AQM family).
    pub aqm: &'static str,
    /// Total hops, including the primary bottleneck.
    pub hop_count: usize,
    /// Mice flows launched over the run.
    pub mice_launched: usize,
    /// Mice flows that delivered their full size before the run ended.
    pub mice_completed: usize,
    /// Mice flow-completion-time P50/P95/P99 in ms, read from a
    /// [`pi2_obs::Histogram`] over nanosecond FCTs.
    pub fct_ms: (f64, f64, f64),
    /// Per-flow mean post-warm-up throughput of the Classic class, Mb/s.
    pub classic_per_flow_mbps: f64,
    /// Per-flow mean post-warm-up throughput of the Scalable class, Mb/s.
    pub scalable_per_flow_mbps: f64,
    /// Classic / Scalable per-flow rate ratio (the Section 6 balance
    /// criterion; 1 = perfect coexistence).
    pub rate_ratio: f64,
    /// Per-hop egress accounting, hop 0 first.
    pub hops: Vec<HopReport>,
    /// Events the dispatch loop processed for this cell.
    pub events_processed: u64,
}

/// Run one topology × AQM cell. With `audit`, the invariant auditor —
/// including per-hop packet conservation — rides along and panics on any
/// violation when the run finishes.
pub fn run_one(kind: TopologyKind, aqm: AqmKind, seed: u64, audit: bool) -> TopologyRun {
    run_one_prepared(kind, aqm, seed, audit, |_| {})
}

/// [`run_one`] with a hook that runs after the topology is installed and
/// before any flow is added — the seam where a driver attaches trace
/// sinks (e.g. a Perfetto timeline exporter) to the fully-built `Sim`.
/// Sinks are pure observers, so a prepared run's results are
/// bit-identical to a bare [`run_one`].
pub fn run_one_prepared(
    kind: TopologyKind,
    aqm: AqmKind,
    seed: u64,
    audit: bool,
    prepare: impl FnOnce(&mut Sim),
) -> TopologyRun {
    let topo = kind.build();
    let buffer_bytes = 40_000 * 1500;
    let hop0 = QueueConfig {
        rate_bps: kind.hop_rate_bps(0),
        buffer_bytes,
    };
    let mut sim = Sim::with_qdisc(
        SimConfig {
            queue: hop0,
            seed,
            monitor: MonitorConfig {
                sample_interval: Duration::from_millis(100),
                warmup: Duration::from_secs(WARMUP_S as i64),
                ..MonitorConfig::default()
            },
        },
        aqm.build_qdisc(hop0),
    );
    if audit {
        sim.core
            .enable_audit(AuditSink::new(seed).with_label(kind.name()));
    }
    sim.core.enable_metrics();
    topo.install(&mut sim.core, |hop| {
        aqm.build_qdisc(QueueConfig {
            rate_bps: kind.hop_rate_bps(hop),
            buffer_bytes,
        })
    });
    prepare(&mut sim);

    // Long flows, pinned to their named paths.
    let mut long: Vec<(FlowId, &'static str, Vec<u32>)> = Vec::new();
    for (label, cc, ecn, path, rtt) in kind.long_flows() {
        let id = sim.add_flow(PathConf::symmetric(rtt), label, Time::ZERO, move |id| {
            Box::new(TcpSource::new(id, cc, ecn, TcpConfig::default()))
        });
        let route = topo.path(path).to_vec();
        sim.set_route(id, route.clone());
        long.push((id, label, route));
    }

    // Mice: one pre-generated heavy-tailed arrival stream per entry path,
    // each flow a data-limited Cubic source (web/RPC objects).
    let mice_rtt = Duration::from_millis(20);
    let mut mice_launched = 0usize;
    for (k, path) in kind.mice_paths().iter().enumerate() {
        let w = MiceWorkload::web(
            Time::from_secs(MICE_START_S),
            Time::from_secs(MICE_STOP_S),
            seed ^ (k as u64).wrapping_mul(MICE_PATH_STRIDE),
        );
        let route = topo.path(path).to_vec();
        for m in mice_arrivals(&w) {
            let tcp = TcpConfig {
                data_limit: Some(m.size_pkts),
                ..TcpConfig::default()
            };
            let id = sim.add_flow(PathConf::symmetric(mice_rtt), "mice", m.at, move |id| {
                Box::new(TcpSource::new(id, CcKind::Cubic, EcnSetting::NotEcn, tcp))
            });
            sim.set_route(id, route.clone());
            mice_launched += 1;
        }
    }

    sim.run_until(Time::from_secs(DURATION_S));
    if audit {
        sim.core.finish_audit();
    }

    // Mice FCTs (seconds, post-warm-up by construction) through the
    // log-linear histogram in nanoseconds.
    let fcts = sim.core.monitor.completion_times("mice");
    let mut h = Histogram::new();
    for s in &fcts {
        h.record((s * 1e9) as u64);
    }
    let [p50, p95, p99] = h.quantiles([0.50, 0.95, 0.99]);
    let fct_ms = (p50 as f64 / 1e6, p95 as f64 / 1e6, p99 as f64 / 1e6);

    // Per-hop egress accounting from the simulator's per-hop, per-flow
    // post-warm-up byte counters.
    let m = &sim.core.monitor;
    let postwarm_s = (DURATION_S - WARMUP_S) as f64;
    let mbps = |bytes: u64| bytes as f64 * 8.0 / postwarm_s / 1e6;
    let mice_idx = m.flows_labelled("mice");
    let mut hops = Vec::new();
    for hop in 0..sim.core.hop_count() as u32 {
        let bytes = sim.core.hop_flow_bytes(hop);
        let crossing: Vec<f64> = long
            .iter()
            .filter(|(_, _, route)| route.contains(&hop))
            .map(|(id, _, _)| bytes[id.idx()] as f64)
            .collect();
        let class_bytes = |label: &str| -> u64 {
            long.iter()
                .filter(|(_, l, route)| *l == label && route.contains(&hop))
                .map(|(id, _, _)| bytes[id.idx()])
                .sum()
        };
        let mice_bytes: u64 = mice_idx.iter().map(|&i| bytes[i]).sum();
        hops.push(HopReport {
            hop,
            fairness: jain_fairness(&crossing),
            classic_mbps: mbps(class_bytes("classic")),
            scalable_mbps: mbps(class_bytes("scalable")),
            mice_mbps: mbps(mice_bytes),
        });
    }

    let classic_n = m.flows_labelled("classic").len().max(1) as f64;
    let scalable_n = m.flows_labelled("scalable").len().max(1) as f64;
    let classic_per_flow_mbps = m.pooled_mean_tput_mbps("classic") / classic_n;
    let scalable_per_flow_mbps = m.pooled_mean_tput_mbps("scalable") / scalable_n;
    let rate_ratio = if scalable_per_flow_mbps > 0.0 {
        classic_per_flow_mbps / scalable_per_flow_mbps
    } else {
        f64::INFINITY
    };
    let mice_completed = fcts.len();
    let events_processed = sim.core.take_metrics().map_or(0, |mx| {
        crate::runner::notify_cell_metrics(&mx);
        mx.events_processed()
    });

    TopologyRun {
        topology: kind.name(),
        aqm: aqm.name(),
        hop_count: sim.core.hop_count(),
        mice_launched,
        mice_completed,
        fct_ms,
        classic_per_flow_mbps,
        scalable_per_flow_mbps,
        rate_ratio,
        hops,
        events_processed,
    }
}

/// The full family: {parking-lot-3, access-core-2} × {PI2, DualPI2},
/// fanned out through [`crate::runner::par_map`] (the `PI2_THREADS` knob)
/// with results bit-identical to a serial loop for any thread count.
pub fn topology(seed: u64, audit: bool) -> Vec<TopologyRun> {
    let mut cells = Vec::new();
    for kind in [TopologyKind::ParkingLot3, TopologyKind::AccessCore2] {
        for aqm in [AqmKind::pi2_default(), AqmKind::dualq_default(20_000_000)] {
            cells.push((kind, aqm));
        }
    }
    crate::runner::par_map(&cells, |(kind, aqm)| {
        run_one(*kind, aqm.clone(), seed, audit)
    })
}

/// Render the family as an aligned text table: one summary row per run,
/// then one row per hop with the fairness/egress split.
pub fn render_table(runs: &[TopologyRun]) -> String {
    let mut out = String::from(
        "topology       aqm      mice done/launched  fct p50/p95/p99 ms     c/s ratio\n",
    );
    for r in runs {
        out.push_str(&format!(
            "{:<14} {:<8} {:>6}/{:<8}  {:>7.1}/{:>7.1}/{:>7.1}  {:>9.2}\n",
            r.topology,
            r.aqm,
            r.mice_completed,
            r.mice_launched,
            r.fct_ms.0,
            r.fct_ms.1,
            r.fct_ms.2,
            r.rate_ratio,
        ));
        for h in &r.hops {
            out.push_str(&format!(
                "  hop {}: jain {:.3}  classic {:.2} Mb/s  scalable {:.2} Mb/s  mice {:.2} Mb/s\n",
                h.hop, h.fairness, h.classic_mbps, h.scalable_mbps, h.mice_mbps
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parking_lot_reports_every_hop_and_completes_mice() {
        let r = run_one(TopologyKind::ParkingLot3, AqmKind::pi2_default(), 7, true);
        assert_eq!(r.hop_count, 3);
        assert_eq!(r.hops.len(), 3);
        assert!(r.mice_launched > 500, "launched {}", r.mice_launched);
        assert!(
            r.mice_completed as f64 > 0.9 * r.mice_launched as f64,
            "only {}/{} mice completed",
            r.mice_completed,
            r.mice_launched
        );
        assert!(r.fct_ms.0 > 0.0 && r.fct_ms.0 <= r.fct_ms.1 && r.fct_ms.1 <= r.fct_ms.2);
        for h in &r.hops {
            assert!(
                h.fairness > 0.25 && h.fairness <= 1.0,
                "hop {} fairness {}",
                h.hop,
                h.fairness
            );
            assert!(h.classic_mbps > 0.0 && h.scalable_mbps > 0.0 && h.mice_mbps > 0.0);
        }
    }

    #[test]
    fn access_core_mixes_rtts_and_funnels_into_the_core() {
        let r = run_one(
            TopologyKind::AccessCore2,
            AqmKind::dualq_default(20_000_000),
            7,
            true,
        );
        assert_eq!(r.hop_count, 3);
        // Only the leaf0 pair crosses hop 0, everything crosses the core.
        let core = &r.hops[2];
        let leaf_total = r.hops[0].classic_mbps + r.hops[0].scalable_mbps;
        let core_total = core.classic_mbps + core.scalable_mbps;
        assert!(
            core_total > leaf_total,
            "core {core_total} vs leaf0 {leaf_total}"
        );
        assert!(core.mice_mbps > 0.0, "mice enter at the core");
    }

    #[test]
    fn family_runs_all_cells_and_renders() {
        let runs = topology(3, false);
        assert_eq!(runs.len(), 4);
        let t = render_table(&runs);
        assert!(t.contains("parking-lot-3") && t.contains("access-core-2"), "{t}");
        assert!(t.contains("pi2") && t.contains("dualpi2"), "{t}");
        assert!(t.contains("hop 2"), "{t}");
    }
}
