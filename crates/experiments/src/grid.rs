//! The coexistence grid behind Figures 15–18.
//!
//! Link ∈ {4, 12, 40, 120, 200} Mb/s × RTT ∈ {5, 10, 20, 50, 100} ms, one
//! Cubic flow against one ECN-enabled flow (ECN-Cubic as the control pair,
//! DCTCP as the coexistence pair), under PIE and under the coupled PI2.
//! Each cell yields the figures' four panels at once:
//!
//! * Figure 15 — rate balance (non-ECN flow / ECN flow);
//! * Figure 16 — queue delay mean and P99;
//! * Figure 17 — applied mark/drop probability P25/mean/P99 per flow;
//! * Figure 18 — link utilization P1/mean/P99.

use crate::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_netsim::FlowCounts;
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting};

/// The paper's link-rate axis (Mb/s).
pub const LINKS_MBPS: [u64; 5] = [4, 12, 40, 120, 200];
/// The paper's RTT axis (ms).
pub const RTTS_MS: [i64; 5] = [5, 10, 20, 50, 100];

/// Which flow pair shares the bottleneck.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Pair {
    /// Cubic (drop) vs ECN-Cubic — the control experiment: same algorithm,
    /// only the signal differs, so the ratio should be ≈1 under both AQMs.
    CubicVsEcnCubic,
    /// Cubic (drop) vs DCTCP — the coexistence experiment.
    CubicVsDctcp,
}

impl Pair {
    /// Label of the ECN-capable flow.
    pub fn ecn_label(self) -> &'static str {
        match self {
            Pair::CubicVsEcnCubic => "ecn-cubic",
            Pair::CubicVsDctcp => "dctcp",
        }
    }

    fn ecn_flow(self, rtt: Duration) -> FlowGroup {
        match self {
            Pair::CubicVsEcnCubic => {
                FlowGroup::new(1, CcKind::Cubic, EcnSetting::Classic, self.ecn_label(), rtt)
            }
            Pair::CubicVsDctcp => {
                FlowGroup::new(1, CcKind::Dctcp, EcnSetting::Scalable, self.ecn_label(), rtt)
            }
        }
    }
}

/// One grid cell's measurements.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// AQM name.
    pub aqm: &'static str,
    /// Flow pair.
    pub pair: Pair,
    /// Link rate in Mb/s.
    pub link_mbps: u64,
    /// Base RTT in ms.
    pub rtt_ms: i64,
    /// Figure 15: non-ECN (Cubic) rate / ECN flow rate.
    pub rate_ratio: f64,
    /// Per-flow throughputs in Mb/s `(cubic, ecn)`.
    pub tputs: (f64, f64),
    /// Figure 16: queue delay (ms) summary.
    pub delay: Summary,
    /// Figure 17: applied probability (%) summary for the Cubic flow.
    pub prob_cubic: Summary,
    /// Figure 17: applied probability (%) summary for the ECN flow.
    pub prob_ecn: Summary,
    /// Figure 18: utilization (%) summary.
    pub util: Summary,
    /// Whole-run event totals from the always-on counting sink.
    pub counts: FlowCounts,
    /// AQM update ticks over the run.
    pub aqm_updates: u64,
    /// Registry-histogram sojourn median (ms), whole run. Unlike
    /// [`GridCell::delay`] (post-warm-up monitor samples) this comes from
    /// the `pi2_obs` log-linear histogram, so it doubles as a cross-check
    /// between the two measurement paths.
    pub sojourn_p50_ms: f64,
    /// Registry-histogram sojourn P99 (ms), whole run.
    pub sojourn_p99_ms: f64,
    /// Events the dispatch loop processed for this cell.
    pub events_processed: u64,
}

/// Run one cell.
pub fn run_cell(
    aqm: AqmKind,
    pair: Pair,
    link_mbps: u64,
    rtt_ms: i64,
    duration_s: u64,
    seed: u64,
) -> GridCell {
    let rtt = Duration::from_millis(rtt_ms);
    let mut sc = Scenario::new(aqm, link_mbps * 1_000_000);
    sc.tcp.push(FlowGroup::new(
        1,
        CcKind::Cubic,
        EcnSetting::NotEcn,
        "cubic",
        rtt,
    ));
    sc.tcp.push(pair.ecn_flow(rtt));
    sc.duration = Time::from_secs(duration_s);
    sc.warmup = Duration::from_secs(duration_s as i64 / 3);
    sc.seed = seed;
    let r = sc.run();
    let c = r.per_flow_tput_mbps("cubic");
    let e = r.per_flow_tput_mbps(pair.ecn_label());
    let (sojourn_p50_ms, sojourn_p99_ms, events_processed) = match r.metrics.as_deref() {
        Some(m) => (
            m.sojourn().quantile(0.5) as f64 / 1e6,
            m.sojourn().quantile(0.99) as f64 / 1e6,
            m.events_processed(),
        ),
        None => (0.0, 0.0, 0),
    };
    GridCell {
        aqm: r.aqm,
        pair,
        link_mbps,
        rtt_ms,
        rate_ratio: if e > 0.0 { c / e } else { f64::INFINITY },
        tputs: (c, e),
        delay: r.delay_summary(),
        prob_cubic: r.prob_summary("cubic"),
        prob_ecn: r.prob_summary(pair.ecn_label()),
        util: r.util_summary(),
        counts: r.counters.totals(),
        aqm_updates: r.counters.aqm_updates,
        sojourn_p50_ms,
        sojourn_p99_ms,
        events_processed,
    }
}

/// The grid's work list in figure order: both pairs × both AQMs × the
/// link and RTT axes, with the per-cell seed the figures use.
pub fn grid_cells() -> Vec<(AqmKind, Pair, u64, i64, u64)> {
    let mut cells = Vec::with_capacity(100);
    for pair in [Pair::CubicVsEcnCubic, Pair::CubicVsDctcp] {
        for aqm in [AqmKind::pie_default(), AqmKind::coupled_default()] {
            for &link in &LINKS_MBPS {
                for &rtt in &RTTS_MS {
                    cells.push((aqm.clone(), pair, link, rtt, 0x15c0 + link + rtt as u64));
                }
            }
        }
    }
    cells
}

/// Run the complete grid for both AQMs and both pairs, cells fanned out
/// over the parallel [`crate::runner`] (`PI2_THREADS` governs workers;
/// output order and bits match a serial run).
///
/// `duration_s` trades accuracy for time; the bench binaries use 60 s,
/// tests use much less.
pub fn run_grid(duration_s: u64) -> Vec<GridCell> {
    crate::runner::par_map(&grid_cells(), |(aqm, pair, link, rtt, seed)| {
        run_cell(aqm.clone(), *pair, *link, *rtt, duration_s, *seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pie_lets_dctcp_starve_cubic() {
        let cell = run_cell(
            AqmKind::pie_default(),
            Pair::CubicVsDctcp,
            40,
            10,
            40,
            9,
        );
        assert!(
            cell.rate_ratio < 0.3,
            "under PIE, Cubic/DCTCP should be ≪1, got {:.2}",
            cell.rate_ratio
        );
    }

    #[test]
    fn coupled_pi2_balances_cubic_and_dctcp() {
        let cell = run_cell(
            AqmKind::coupled_default(),
            Pair::CubicVsDctcp,
            40,
            10,
            40,
            9,
        );
        assert!(
            (0.4..2.5).contains(&cell.rate_ratio),
            "under coupled PI2, Cubic/DCTCP should be ≈1, got {:.2}",
            cell.rate_ratio
        );
    }

    #[test]
    fn control_pair_is_balanced_under_both() {
        for aqm in [AqmKind::pie_default(), AqmKind::coupled_default()] {
            let cell = run_cell(aqm, Pair::CubicVsEcnCubic, 40, 10, 40, 9);
            assert!(
                (0.4..2.5).contains(&cell.rate_ratio),
                "{}: Cubic/ECN-Cubic ratio {:.2}",
                cell.aqm,
                cell.rate_ratio
            );
        }
    }

    #[test]
    fn coupled_aqm_balances_the_whole_scalable_family() {
        // The coupled AQM was derived for DCTCP, but any B=1 control with
        // W ≈ 2/p-scale response should coexist comparably. Relentless
        // (W = 1/p) ends up at half DCTCP's window — i.e. Cubic/Relentless
        // lands around 2x — still a far cry from PIE's 10x starvation.
        use crate::scenario::{FlowGroup, Scenario};
        use pi2_simcore::{Duration as D, Time as T};
        for (cc, lo, hi) in [
            (pi2_transport::CcKind::ScalableHalfPkt, 0.4, 2.5),
            (pi2_transport::CcKind::Relentless, 0.8, 5.0),
        ] {
            let mut sc = Scenario::new(AqmKind::coupled_default(), 40_000_000);
            sc.tcp.push(FlowGroup::new(
                1,
                pi2_transport::CcKind::Cubic,
                pi2_transport::EcnSetting::NotEcn,
                "cubic",
                D::from_millis(10),
            ));
            sc.tcp.push(FlowGroup::new(
                1,
                cc,
                pi2_transport::EcnSetting::Scalable,
                "scal",
                D::from_millis(10),
            ));
            sc.duration = T::from_secs(40);
            sc.warmup = D::from_secs(15);
            sc.seed = 0x5ca1;
            let r = sc.run();
            let ratio = r.per_flow_tput_mbps("cubic") / r.per_flow_tput_mbps("scal").max(1e-9);
            assert!(
                (lo..hi).contains(&ratio),
                "{cc:?}: Cubic/scalable ratio {ratio:.2} outside [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn probability_relation_visible_in_grid_data() {
        // Figure 17's key feature: under the coupled AQM, the DCTCP flow's
        // probability is much higher than the Cubic flow's (ps vs (ps/2)²).
        let cell = run_cell(
            AqmKind::coupled_default(),
            Pair::CubicVsDctcp,
            40,
            10,
            40,
            9,
        );
        assert!(
            cell.prob_ecn.mean > 4.0 * cell.prob_cubic.mean,
            "ps (mean {:.2}%) should dwarf pc (mean {:.2}%)",
            cell.prob_ecn.mean,
            cell.prob_cubic.mean
        );
    }
}
