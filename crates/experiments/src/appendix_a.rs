//! Appendix A: steady-state window laws, validated in the packet
//! simulator.
//!
//! A single flow runs against a fixed-probability signaller
//! ([`pi2_aqm::FixedProb`]) on an over-provisioned link, so the window is
//! purely signal-limited. The measured mean window (throughput × RTT ÷
//! segment size) is compared with the closed form:
//!
//! | control | law |
//! |---|---|
//! | Reno | `1.22/√p` (eq. 5) |
//! | CReno (Cubic at small BDP) | `1.68/√p` (eq. 7) |
//! | DCTCP, probabilistic marking | `2/p` (eq. 11) |
//! | Scalable half-packet | `2/p` |

use crate::scenario::{AqmKind, FlowGroup, RunResult, Scenario};
use pi2_aqm::FixedProb;
use pi2_netsim::{MonitorConfig, PathConf, QueueConfig, Sim, SimConfig};
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

/// One law-validation measurement.
#[derive(Clone, Debug)]
pub struct LawPoint {
    /// Congestion control name.
    pub cc: &'static str,
    /// The fixed signal probability.
    pub p: f64,
    /// Measured mean window in packets.
    pub measured_w: f64,
    /// The closed-form prediction.
    pub predicted_w: f64,
    /// Relative error.
    pub rel_err: f64,
}

/// Measure the steady-state window of `cc` at fixed probability `p`.
pub fn measure(cc: CcKind, ecn: EcnSetting, p: f64, seed: u64) -> LawPoint {
    let rtt = Duration::from_millis(40);
    // Over-provisioned link: the window never fills the pipe, so RTT stays
    // at base and W = rate·RTT/mss.
    let rate_bps: u64 = 2_000_000_000;
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps,
                buffer_bytes: usize::MAX,
            },
            seed,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(30),
                ..MonitorConfig::default()
            },
        },
        Box::new(FixedProb::new(p)),
    );
    let id = sim.add_flow(PathConf::symmetric(rtt), "flow", Time::ZERO, move |id| {
        Box::new(TcpSource::new(id, cc, ecn, TcpConfig::default()))
    });
    sim.run_until(Time::from_secs(120));
    let span = sim.core.monitor.measurement_span();
    let tput_bps = sim.core.monitor.flow(id).mean_tput_mbps(span) * 1e6;
    let measured_w = tput_bps * rtt.as_secs_f64() / (1500.0 * 8.0);
    let probe = cc.build(10.0);
    let predicted_w = probe.steady_state_window(p, rtt).unwrap_or(f64::NAN);
    LawPoint {
        cc: probe.name(),
        p,
        measured_w,
        predicted_w,
        rel_err: (measured_w - predicted_w).abs() / predicted_w,
    }
}

/// The full Appendix A table: each control at several probabilities.
pub fn appendix_a() -> Vec<LawPoint> {
    let mut out = Vec::new();
    for &p in &[0.02, 0.05, 0.1] {
        out.push(measure(CcKind::Reno, EcnSetting::NotEcn, p, 0xa));
        out.push(measure(CcKind::Cubic, EcnSetting::NotEcn, p, 0xa));
    }
    for &p in &[0.05, 0.1, 0.2] {
        out.push(measure(CcKind::Dctcp, EcnSetting::Scalable, p, 0xa));
        out.push(measure(CcKind::ScalableHalfPkt, EcnSetting::Scalable, p, 0xa));
    }
    out
}

/// Eq. (11) vs eq. (12): DCTCP's window law depends on *how* it is
/// marked. Run one DCTCP flow over a bottleneck it saturates, marked
/// either by a step threshold (eq. (12): `W = 2/p²`, i.e. `p = √(2/W)`)
/// or by a fixed probability chosen to match the step's realized fraction
/// (eq. (11): `W = 2/p`). Returns
/// `(realized step fraction, W under step, W under probabilistic)`.
pub fn step_vs_probabilistic(seed: u64) -> (f64, f64, f64) {
    use pi2_aqm::{StepMark, StepMarkConfig};
    let rate_bps: u64 = 40_000_000;
    let rtt = Duration::from_millis(20);
    let run = |aqm: Box<dyn pi2_netsim::Aqm>, seed: u64| -> (f64, f64) {
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps,
                    buffer_bytes: usize::MAX,
                },
                seed,
                monitor: MonitorConfig {
                    warmup: Duration::from_secs(20),
                    ..MonitorConfig::default()
                },
            },
            aqm,
        );
        let id = sim.add_flow(PathConf::symmetric(rtt), "dctcp", Time::ZERO, |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Dctcp,
                EcnSetting::Scalable,
                TcpConfig::default(),
            ))
        });
        sim.run_until(Time::from_secs(80));
        let m = &sim.core.monitor;
        let span = m.measurement_span();
        let tput_bps = m.flow(id).mean_tput_mbps(span) * 1e6;
        // Effective RTT = base + mean queue delay.
        let sojourns: Vec<f64> = m.sojourn_ms.iter().map(|&x| x as f64).collect();
        let eff_rtt = rtt.as_secs_f64() + pi2_stats::mean(&sojourns) / 1000.0;
        let w = tput_bps * eff_rtt / (1500.0 * 8.0);
        let frac = {
            let f = m.flow(id);
            f.marked as f64 / f.sent_pkts.max(1) as f64
        };
        (frac, w)
    };
    let (p_step, w_step) = run(
        Box::new(StepMark::new(StepMarkConfig::default())),
        seed,
    );
    // Probabilistic marking at the same fraction.
    let (_, w_prob) = run(Box::new(FixedProb::new(p_step)), seed + 1);
    (p_step, w_step, w_prob)
}

/// The coupling-law check behind eq. (14): run Cubic and DCTCP through a
/// coupled AQM and report how the realized probabilities relate
/// (`pc ≟ (ps/k)²`).
pub fn coupling_check(k: f64, seed: u64) -> (RunResult, f64, f64) {
    let mut cfg = pi2_aqm::CoupledPi2Config::default();
    cfg.k = k;
    let mut sc = Scenario::new(AqmKind::Coupled(cfg), 40_000_000);
    sc.tcp.push(FlowGroup::new(
        1,
        CcKind::Cubic,
        EcnSetting::NotEcn,
        "cubic",
        Duration::from_millis(10),
    ));
    sc.tcp.push(FlowGroup::new(
        1,
        CcKind::Dctcp,
        EcnSetting::Scalable,
        "dctcp",
        Duration::from_millis(10),
    ));
    sc.duration = Time::from_secs(60);
    sc.warmup = Duration::from_secs(20);
    sc.seed = seed;
    let r = sc.run();
    let pc = r.monitor.flows[0].signal_fraction();
    let ps = r.monitor.flows[1].signal_fraction();
    (r, pc, ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reno_tracks_mathis_law() {
        let pt = measure(CcKind::Reno, EcnSetting::NotEcn, 0.05, 1);
        assert!(
            pt.rel_err < 0.25,
            "Reno at p=0.05: measured {:.1} vs predicted {:.1}",
            pt.measured_w,
            pt.predicted_w
        );
    }

    #[test]
    fn dctcp_tracks_2_over_p() {
        let pt = measure(CcKind::Dctcp, EcnSetting::Scalable, 0.1, 1);
        assert!(
            pt.rel_err < 0.3,
            "DCTCP at p=0.1: measured {:.1} vs predicted {:.1}",
            pt.measured_w,
            pt.predicted_w
        );
    }

    #[test]
    fn step_marking_obeys_eq_12_probabilistic_eq_11() {
        let (p, w_step, w_prob) = step_vs_probabilistic(0x57e9);
        // Under a step threshold (eq. 12): W = 2/p².
        let law_step = 2.0 / (p * p);
        let err_step = (w_step - law_step).abs() / law_step;
        assert!(
            err_step < 0.45,
            "step: W {w_step:.1} vs 2/p² = {law_step:.1} at p = {p:.4}"
        );
        // The same fraction applied probabilistically (eq. 11): W = 2/p —
        // a much smaller window; the exponent change must be unmistakable.
        let law_prob = 2.0 / p;
        let err_prob = (w_prob - law_prob).abs() / law_prob;
        assert!(
            err_prob < 0.45,
            "prob: W {w_prob:.1} vs 2/p = {law_prob:.1} at p = {p:.4}"
        );
        assert!(
            w_step > 3.0 * w_prob,
            "the exponent change should separate the windows: {w_step:.1} vs {w_prob:.1}"
        );
    }

    #[test]
    fn coupled_probabilities_follow_the_square_relation() {
        // The relation pc = (ps/2)² holds *instantaneously*; comparing
        // time-averages directly would be biased by Jensen's inequality
        // (E[(ps/2)²] > (E[ps]/2)² since ps fluctuates with the Cubic
        // sawtooth). So compare the mean applied Classic probability with
        // the mean of (ps/2)² computed from the per-packet Scalable
        // probability samples.
        let (r, pc_realized, ps_realized) = coupling_check(2.0, 3);
        assert!(pc_realized > 0.0 && ps_realized > 0.0);
        let pc_applied: Vec<f64> = r
            .monitor
            .pooled_probs("cubic")
            .iter()
            .map(|&p| p as f64)
            .collect();
        let ps_applied: Vec<f64> = r
            .monitor
            .pooled_probs("dctcp")
            .iter()
            .map(|&p| (p as f64 / 2.0).powi(2))
            .collect();
        let mean_pc = pi2_stats::mean(&pc_applied);
        let mean_sq = pi2_stats::mean(&ps_applied);
        let err = (mean_pc - mean_sq).abs() / mean_sq;
        assert!(
            err < 0.25,
            "E[pc] {mean_pc:.5} vs E[(ps/2)²] {mean_sq:.5}"
        );
        // The realized per-flow signal fraction tracks the applied mean,
        // modulo arrival weighting: the Cubic flow offers the most packets
        // exactly when its window (and hence p') is about to peak, so the
        // realized fraction sits somewhat above the unweighted mean.
        let ferr = (pc_realized - mean_pc).abs() / mean_pc;
        assert!(ferr < 0.7, "realized pc {pc_realized:.5} vs applied {mean_pc:.5}");
    }
}
