//! Web-like short-flow workloads (paper §6, "Responsiveness and
//! Stability"): mixed flow sizes over a range of loads, measuring flow
//! completion times.
//!
//! The paper reports that short-flow completion times with PIE, bare-PIE
//! and PI2 "were essentially the same" under both heavy and light
//! Web-like workloads. We reproduce the workload as a Poisson arrival
//! process of size-limited TCP flows with bounded-Pareto sizes (the
//! classic heavy-tailed web-object model) over a long-running background
//! flow that keeps the AQM active.

use crate::scenario::AqmKind;
use pi2_netsim::{MonitorConfig, PathConf, QueueConfig, Sim, SimConfig};
use pi2_simcore::{Duration, Rng, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

/// Web workload parameters.
#[derive(Clone, Debug)]
pub struct WebWorkload {
    /// Bottleneck rate in bits/s.
    pub rate_bps: u64,
    /// Base RTT of all flows.
    pub rtt: Duration,
    /// Mean flow arrival rate (flows per second, Poisson).
    pub arrivals_per_sec: f64,
    /// Bounded-Pareto size distribution (shape, min packets, max packets).
    pub size_dist: (f64, f64, f64),
    /// Number of long-running background flows.
    pub background: usize,
    /// Total simulated time.
    pub duration: Time,
    /// Seed for arrivals, sizes and the simulation itself.
    pub seed: u64,
}

impl WebWorkload {
    /// Light load: ~10 % of a 10 Mb/s link in short flows.
    pub fn light() -> Self {
        WebWorkload {
            rate_bps: 10_000_000,
            rtt: Duration::from_millis(50),
            arrivals_per_sec: 4.0,
            size_dist: (1.2, 4.0, 300.0),
            background: 1,
            duration: Time::from_secs(120),
            seed: 0x11eb,
        }
    }

    /// Heavy load: short flows alone approach half the link.
    pub fn heavy() -> Self {
        WebWorkload {
            arrivals_per_sec: 16.0,
            ..WebWorkload::light()
        }
    }
}

/// Flow-completion-time result for one AQM.
#[derive(Clone, Debug)]
pub struct FctResult {
    /// AQM name.
    pub aqm: &'static str,
    /// FCT summary (seconds) for short flows (≤ 20 packets).
    pub short_fct: Summary,
    /// FCT summary (seconds) for longer flows (> 20 packets).
    pub long_fct: Summary,
    /// Completed / launched flows.
    pub completed: usize,
    /// Flows launched.
    pub launched: usize,
    /// Mean queue delay (ms) during the run.
    pub qdelay_ms: f64,
}

/// Run the workload under one AQM.
pub fn run_one(aqm: AqmKind, w: &WebWorkload) -> FctResult {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: w.rate_bps,
                buffer_bytes: 40_000 * 1500,
            },
            seed: w.seed,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(5),
                record_probs: false,
                ..MonitorConfig::default()
            },
        },
        aqm.build(),
    );
    for _ in 0..w.background {
        sim.add_flow(PathConf::symmetric(w.rtt), "bg", Time::ZERO, |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Cubic,
                EcnSetting::NotEcn,
                TcpConfig::default(),
            ))
        });
    }
    // Pre-generate the Poisson arrivals and Pareto sizes so the flow set
    // is identical across AQMs (paired comparison).
    let mut gen = Rng::new(w.seed ^ 0xF10E5);
    let mut t = 0.0;
    let horizon = w.duration.as_secs_f64() - 10.0; // let late flows finish
    let mut launched = 0;
    let mut sizes = Vec::new();
    while t < horizon {
        t += gen.exponential(1.0 / w.arrivals_per_sec);
        if t >= horizon {
            break;
        }
        let (alpha, lo, hi) = w.size_dist;
        let pkts = gen.bounded_pareto(alpha, lo, hi).round().max(1.0) as u64;
        sizes.push(pkts);
        let start = Time::from_secs_f64(t);
        let label = if pkts <= 20 { "short" } else { "long" };
        sim.add_flow(PathConf::symmetric(w.rtt), label, start, move |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Cubic,
                EcnSetting::NotEcn,
                TcpConfig {
                    data_limit: Some(pkts),
                    ..TcpConfig::default()
                },
            ))
        });
        launched += 1;
    }
    sim.run_until(w.duration);
    let m = &sim.core.monitor;
    let short: Vec<f64> = m.completion_times("short");
    let long: Vec<f64> = m.completion_times("long");
    let sojourns: Vec<f64> = m.sojourn_ms.iter().map(|&x| x as f64).collect();
    FctResult {
        aqm: aqm.name(),
        short_fct: Summary::of(&short),
        long_fct: Summary::of(&long),
        completed: m.completions.len(),
        launched,
        qdelay_ms: pi2_stats::mean(&sojourns),
    }
}

/// The full comparison: PIE, bare-PIE and PI2 under one workload.
pub fn compare(w: &WebWorkload) -> Vec<FctResult> {
    vec![
        run_one(AqmKind::Pie(pi2_aqm::PieConfig::paper_default()), w),
        run_one(AqmKind::Pie(pi2_aqm::PieConfig::bare()), w),
        run_one(AqmKind::pi2_default(), w),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> WebWorkload {
        WebWorkload {
            duration: Time::from_secs(40),
            ..WebWorkload::light()
        }
    }

    #[test]
    fn flows_complete_and_fcts_are_sane() {
        let r = run_one(AqmKind::pi2_default(), &quick());
        assert!(r.launched > 50, "launched {}", r.launched);
        assert!(
            r.completed as f64 > 0.9 * r.launched as f64,
            "only {}/{} completed",
            r.completed,
            r.launched
        );
        // A short flow at 50 ms RTT needs at least ~2 RTTs.
        assert!(r.short_fct.p50 > 0.05, "p50 {:.3}s", r.short_fct.p50);
        assert!(r.short_fct.p50 < 2.0, "p50 {:.3}s", r.short_fct.p50);
        // Longer flows take longer.
        assert!(r.long_fct.p50 > r.short_fct.p50);
    }

    #[test]
    fn fcts_are_essentially_the_same_across_aqms() {
        // The paper's claim, on the light workload.
        let results = compare(&quick());
        let base = results[0].short_fct.p50;
        for r in &results[1..] {
            let diff = (r.short_fct.p50 - base).abs() / base;
            assert!(
                diff < 0.4,
                "{} short-flow p50 {:.3}s deviates from PIE's {:.3}s",
                r.aqm,
                r.short_fct.p50,
                base
            );
        }
    }
}
