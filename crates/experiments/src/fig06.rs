//! Figures 6 and 13: queue delay under varying traffic intensity.
//!
//! Flow count steps 10:30:50:30:10 over five 50 s phases. Figure 6 runs it
//! at 100 Mb/s / RTT 10 ms and compares the fixed-gain `pi` straw man
//! against PI2; Figure 13 runs the same steps at 10 Mb/s / RTT 100 ms and
//! compares PIE against PI2.

use crate::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting};

/// Result of one AQM's run.
#[derive(Clone, Debug)]
pub struct IntensityRun {
    /// AQM name.
    pub aqm: &'static str,
    /// `(t s, queue delay ms)` series (1 s sampling).
    pub qdelay: Vec<(f64, f64)>,
    /// Queue-delay summary over per-packet sojourns, excluding warm-up.
    pub delay: Summary,
    /// Std-dev of the sampled queue delay per steady phase (off-transient
    /// seconds only), the oscillation measure the figure shows visually.
    pub steady_phase_std_ms: f64,
}

/// Parameters of the varying-intensity experiment.
#[derive(Clone, Debug)]
pub struct IntensityConfig {
    /// Link rate in bits/s.
    pub rate_bps: u64,
    /// Base RTT.
    pub rtt: Duration,
    /// Phase length (paper: 50 s).
    pub phase: Duration,
    /// RNG seed.
    pub seed: u64,
}

impl IntensityConfig {
    /// Figure 6: 100 Mb/s, 10 ms.
    pub fn fig06() -> Self {
        IntensityConfig {
            rate_bps: 100_000_000,
            rtt: Duration::from_millis(10),
            phase: Duration::from_secs(50),
            seed: 6,
        }
    }

    /// Figure 13: 10 Mb/s, 100 ms.
    pub fn fig13() -> Self {
        IntensityConfig {
            rate_bps: 10_000_000,
            rtt: Duration::from_millis(100),
            phase: Duration::from_secs(50),
            seed: 13,
        }
    }
}

/// Build the 10:30:50:30:10 flow schedule.
fn add_intensity_flows(sc: &mut Scenario, cfg: &IntensityConfig) {
    let p = cfg.phase;
    let end = Time::ZERO + p * 5;
    // 10 flows for the whole run.
    let mut base = FlowGroup::new(10, CcKind::Reno, EcnSetting::NotEcn, "reno", cfg.rtt);
    base.stop = Some(end);
    sc.tcp.push(base);
    // +20 during phases 2-4 (50 s .. 200 s).
    sc.tcp.push(
        FlowGroup::new(20, CcKind::Reno, EcnSetting::NotEcn, "reno", cfg.rtt)
            .between(Time::ZERO + p, Time::ZERO + p * 4),
    );
    // +20 more during phase 3 (100 s .. 150 s).
    sc.tcp.push(
        FlowGroup::new(20, CcKind::Reno, EcnSetting::NotEcn, "reno", cfg.rtt)
            .between(Time::ZERO + p * 2, Time::ZERO + p * 3),
    );
}

/// Seconds considered "steady" (excluding ±5 s around each phase change).
fn steady_mask(t: f64, phase_s: f64) -> bool {
    let in_phase = t % phase_s;
    (5.0..phase_s - 1.0).contains(&in_phase)
}

/// Run the experiment for one AQM.
pub fn run_one(aqm: AqmKind, cfg: &IntensityConfig) -> IntensityRun {
    let mut sc = Scenario::new(aqm, cfg.rate_bps);
    add_intensity_flows(&mut sc, cfg);
    sc.duration = Time::ZERO + cfg.phase * 5;
    sc.warmup = Duration::from_secs(5);
    sc.seed = cfg.seed;
    let r = sc.run();
    let phase_s = cfg.phase.as_secs_f64();
    let steady: Vec<f64> = r
        .qdelay_series()
        .iter()
        .filter(|(t, _)| steady_mask(*t, phase_s))
        .map(|&(_, d)| d)
        .collect();
    let std = pi2_stats::stddev(&steady);
    IntensityRun {
        aqm: r.aqm,
        qdelay: r.qdelay_series().to_vec(),
        delay: r.delay_summary(),
        steady_phase_std_ms: std,
    }
}

/// Figure 6: `pi` (fixed gains, no squaring) vs `pi2`.
pub fn fig06() -> Vec<IntensityRun> {
    let cfg = IntensityConfig::fig06();
    vec![
        run_one(
            AqmKind::Pi(pi2_aqm::PiConfig::untuned_pie_gains()),
            &cfg,
        ),
        run_one(AqmKind::pi2_default(), &cfg),
    ]
}

/// Figure 13: PIE vs PI2.
pub fn fig13() -> Vec<IntensityRun> {
    let cfg = IntensityConfig::fig13();
    vec![
        run_one(AqmKind::pie_default(), &cfg),
        run_one(AqmKind::pi2_default(), &cfg),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A scaled-down Figure 13 (10 s phases) preserving the shape claim:
    /// PI2's delay stays controlled across intensity steps.
    #[test]
    fn pi2_keeps_delay_bounded_across_steps() {
        let cfg = IntensityConfig {
            phase: Duration::from_secs(10),
            ..IntensityConfig::fig13()
        };
        let run = run_one(AqmKind::pi2_default(), &cfg);
        assert!(
            run.delay.p50 < 60.0,
            "median delay {:.1} ms under stepped load",
            run.delay.p50
        );
        assert!(run.qdelay.len() >= 45);
    }

    #[test]
    fn steady_mask_excludes_transients() {
        assert!(!steady_mask(50.5, 50.0));
        assert!(!steady_mask(52.0, 50.0));
        assert!(steady_mask(30.0, 50.0));
        assert!(steady_mask(190.0, 50.0));
    }
}
