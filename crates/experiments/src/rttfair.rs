//! RTT fairness under the paper's AQMs (extension).
//!
//! The paper keeps both coexisting flows at equal base RTT in every grid
//! cell. A classic question for any single-queue AQM is what happens when
//! RTTs differ: TCP's window dynamics give short-RTT flows more
//! throughput (`rate ∝ W/RTT`, and the standing AQM queue partially
//! equalizes effective RTTs — one of the arguments *for* a nonzero
//! target). This experiment measures the short/long rate ratio for a
//! 10 ms vs 100 ms flow pair under each AQM, and shows the equalizing
//! effect of the queue: the deeper the target, the smaller the RTT ratio
//! between *effective* RTTs, the fairer the outcome.

use crate::scenario::{AqmKind, FlowGroup, Scenario};
use pi2_aqm::Pi2Config;
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};

/// One RTT-fairness measurement.
#[derive(Clone, Debug)]
pub struct RttFairResult {
    /// AQM name.
    pub aqm: &'static str,
    /// Delay target used (ms).
    pub target_ms: i64,
    /// Throughput of the short-RTT (10 ms) flow, Mb/s.
    pub short_mbps: f64,
    /// Throughput of the long-RTT (100 ms) flow, Mb/s.
    pub long_mbps: f64,
    /// short/long throughput ratio.
    pub ratio: f64,
}

/// Run one AQM with one 10 ms and one 100 ms Reno flow on 40 Mb/s.
///
/// The buffer is a realistic 250 ms (not the paper's near-infinite
/// 40 000 packets) so the tail-drop row behaves like a plausible FIFO
/// router rather than a 12-second bufferbloat pathology.
pub fn run_one(aqm: AqmKind, target_ms: i64, duration_s: u64, seed: u64) -> RttFairResult {
    let mut sc = Scenario::new(aqm, 40_000_000);
    sc.buffer_bytes = (40_000_000.0 * 0.250 / 8.0) as usize;
    sc.tcp.push(FlowGroup::new(
        1,
        CcKind::Reno,
        EcnSetting::NotEcn,
        "short",
        Duration::from_millis(10),
    ));
    sc.tcp.push(FlowGroup::new(
        1,
        CcKind::Reno,
        EcnSetting::NotEcn,
        "long",
        Duration::from_millis(100),
    ));
    sc.duration = Time::from_secs(duration_s);
    sc.warmup = Duration::from_secs(duration_s as i64 / 3);
    sc.seed = seed;
    let r = sc.run();
    let s = r.tput_mbps("short");
    let l = r.tput_mbps("long");
    RttFairResult {
        aqm: r.aqm,
        target_ms,
        short_mbps: s,
        long_mbps: l,
        ratio: s / l.max(1e-9),
    }
}

/// Sweep the PI2 target to show the queue's equalizing effect. Each
/// point averages three seeds — Reno's long congestion epochs at 100 ms
/// RTT make single runs noisy. The 3×targets individual runs fan out
/// over [`crate::runner::par_map`]; averaging happens after the join.
pub fn target_sweep(targets_ms: &[i64], duration_s: u64, seed: u64) -> Vec<RttFairResult> {
    let work: Vec<(i64, u64)> = targets_ms
        .iter()
        .flat_map(|&t| (0..3u64).map(move |i| (t, seed + i)))
        .collect();
    let runs = crate::runner::par_map(&work, |&(t, s)| {
        let cfg = Pi2Config {
            target: Duration::from_millis(t),
            ..Pi2Config::default()
        };
        run_one(AqmKind::Pi2(cfg), t, duration_s, s)
    });
    runs.chunks(3)
        .map(|chunk| {
            let short = chunk.iter().map(|r| r.short_mbps).sum::<f64>() / 3.0;
            let long = chunk.iter().map(|r| r.long_mbps).sum::<f64>() / 3.0;
            RttFairResult {
                aqm: "pi2",
                target_ms: chunk[0].target_ms,
                short_mbps: short,
                long_mbps: long,
                ratio: short / long.max(1e-9),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_rtt_flow_wins_under_any_single_queue_aqm() {
        let r = run_one(AqmKind::pi2_default(), 20, 40, 3);
        assert!(
            r.ratio > 1.5,
            "10 ms flow should beat 100 ms flow, ratio {:.2}",
            r.ratio
        );
        // But not by the full raw-RTT factor of 10 — the shared 20 ms
        // queue compresses the effective-RTT gap (30 ms vs 120 ms ⇒ ~4x).
        assert!(
            r.ratio < 9.0,
            "queue should soften pure RTT bias, ratio {:.2}",
            r.ratio
        );
    }

    #[test]
    fn deeper_targets_are_fairer() {
        let sweep = target_sweep(&[5, 80], 40, 3);
        assert!(
            sweep[1].ratio < sweep[0].ratio,
            "80 ms target ({:.2}) should be fairer than 5 ms ({:.2})",
            sweep[1].ratio,
            sweep[0].ratio
        );
    }
}
