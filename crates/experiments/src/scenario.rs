//! Scenario assembly: declarative descriptions of the paper's testbed
//! set-ups, compiled into `pi2-netsim` simulations.

use crate::backend::{Backend, BackgroundRun, BgGroup, FluidBackground};
use pi2_aqm::{
    Codel, CodelConfig, CoupledPi2, CoupledPi2Config, DualPi2, DualPi2Config, Pi, Pi2, Pi2Config,
    PiConfig, Pie, PieConfig, Red, RedConfig,
};
use pi2_netsim::{
    Aqm, BottleneckQueue, Ecn, ImpairStats, LinkImpairments, Monitor, MonitorConfig, PassAqm,
    PathConf, Qdisc, QueueConfig, Sim, SimConfig, SimMetrics, TraceCounts, UdpCbrSource,
};
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

/// Which AQM guards the bottleneck.
#[derive(Clone, Debug)]
pub enum AqmKind {
    /// Full Linux PIE with the paper's ECN rework.
    Pie(PieConfig),
    /// PI2 (standalone Classic form, Figure 8).
    Pi2(Pi2Config),
    /// Plain PI with fixed gains (Figure 6's `pi`, or `scal pi`).
    Pi(PiConfig),
    /// The coupled Classic/Scalable single-queue AQM (Figure 9).
    Coupled(CoupledPi2Config),
    /// RED baseline.
    Red(RedConfig),
    /// CoDel baseline.
    Codel(CodelConfig),
    /// No AQM: tail-drop only.
    TailDrop,
    /// The two-queue DualQ Coupled AQM (Section 7's recommended
    /// deployment). A full qdisc rather than a FIFO-attached [`Aqm`]:
    /// only [`AqmKind::build_qdisc`] can instantiate it.
    DualQ(DualPi2Config),
}

impl AqmKind {
    /// Instantiate the AQM for a FIFO bottleneck.
    ///
    /// # Panics
    /// For [`AqmKind::DualQ`], which owns its own queues and cannot sit
    /// behind a FIFO — use [`AqmKind::build_qdisc`] instead.
    pub fn build(&self) -> Box<dyn Aqm> {
        match self {
            AqmKind::Pie(cfg) => Box::new(Pie::new(*cfg)),
            AqmKind::Pi2(cfg) => Box::new(Pi2::new(*cfg)),
            AqmKind::Pi(cfg) => Box::new(Pi::new(*cfg)),
            AqmKind::Coupled(cfg) => Box::new(CoupledPi2::new(*cfg)),
            AqmKind::Red(cfg) => Box::new(Red::new(*cfg)),
            AqmKind::Codel(cfg) => Box::new(Codel::new(*cfg)),
            AqmKind::TailDrop => Box::new(PassAqm),
            AqmKind::DualQ(_) => panic!("DualQ is a full qdisc; use AqmKind::build_qdisc"),
        }
    }

    /// Instantiate the complete queueing discipline for `queue`. Single-
    /// queue AQMs are wrapped in the standard FIFO [`BottleneckQueue`];
    /// the DualQ carries its own internal queues, taking `queue`'s rate
    /// and buffer in place of whatever its config was built with (so a
    /// scenario's `rate_bps` is authoritative for every variant).
    pub fn build_qdisc(&self, queue: QueueConfig) -> Box<dyn Qdisc> {
        match self {
            AqmKind::DualQ(cfg) => {
                let mut cfg = *cfg;
                cfg.rate_bps = queue.rate_bps;
                cfg.buffer_bytes = queue.buffer_bytes;
                Box::new(DualPi2::new(cfg))
            }
            other => Box::new(BottleneckQueue::new(queue, other.build())),
        }
    }

    /// Display name for tables.
    pub fn name(&self) -> &'static str {
        match self {
            AqmKind::Pie(_) => "pie",
            AqmKind::Pi2(_) => "pi2",
            AqmKind::Pi(_) => "pi",
            AqmKind::Coupled(_) => "coupled-pi2",
            AqmKind::Red(_) => "red",
            AqmKind::Codel(_) => "codel",
            AqmKind::TailDrop => "taildrop",
            AqmKind::DualQ(_) => "dualpi2",
        }
    }

    /// The paper-default PIE (Table 1 + ECN rework).
    pub fn pie_default() -> AqmKind {
        AqmKind::Pie(PieConfig::paper_default())
    }

    /// The paper-default standalone PI2.
    pub fn pi2_default() -> AqmKind {
        AqmKind::Pi2(Pi2Config::default())
    }

    /// The paper-default coupled AQM (k = 2).
    pub fn coupled_default() -> AqmKind {
        AqmKind::Coupled(CoupledPi2Config::default())
    }

    /// The default DualQ Coupled AQM sized for `rate_bps` (the ramp
    /// floor scales with the serialization time of two MTUs).
    pub fn dualq_default(rate_bps: u64) -> AqmKind {
        AqmKind::DualQ(DualPi2Config::for_link(rate_bps))
    }
}

/// A homogeneous group of TCP flows.
#[derive(Clone, Debug)]
pub struct FlowGroup {
    /// Number of flows.
    pub count: usize,
    /// Congestion control.
    pub cc: CcKind,
    /// ECN mode.
    pub ecn: EcnSetting,
    /// Monitor label (flows pool under it).
    pub label: String,
    /// Base RTT.
    pub rtt: Duration,
    /// Start time.
    pub start: Time,
    /// Optional stop time.
    pub stop: Option<Time>,
    /// Per-flow TCP configuration.
    pub tcp: TcpConfig,
}

impl FlowGroup {
    /// `count` long-running flows with default TCP settings.
    pub fn new(count: usize, cc: CcKind, ecn: EcnSetting, label: &str, rtt: Duration) -> Self {
        FlowGroup {
            count,
            cc,
            ecn,
            label: label.to_string(),
            rtt,
            start: Time::ZERO,
            stop: None,
            tcp: TcpConfig::default(),
        }
    }

    /// Builder: run between `start` and `stop`.
    pub fn between(mut self, start: Time, stop: Time) -> Self {
        self.start = start;
        self.stop = Some(stop);
        self
    }
}

/// A group of unresponsive CBR sources.
#[derive(Clone, Debug)]
pub struct UdpGroup {
    /// Number of sources.
    pub count: usize,
    /// Per-source rate in bits/s.
    pub rate_bps: u64,
    /// Packet size in bytes.
    pub pkt_size: usize,
    /// Monitor label.
    pub label: String,
    /// Base RTT (affects only delivery accounting).
    pub rtt: Duration,
    /// Start time.
    pub start: Time,
    /// Optional stop time.
    pub stop: Option<Time>,
}

impl UdpGroup {
    /// The paper's UDP probes: 6 Mb/s of 1500 B packets each.
    pub fn paper_probes(count: usize, rtt: Duration) -> Self {
        UdpGroup {
            count,
            rate_bps: 6_000_000,
            pkt_size: 1500,
            label: "udp".to_string(),
            rtt,
            start: Time::ZERO,
            stop: None,
        }
    }
}

/// A complete experiment description.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Bottleneck AQM.
    pub aqm: AqmKind,
    /// Initial bottleneck rate in bits/s.
    pub rate_bps: u64,
    /// Scheduled rate changes (Figure 12).
    pub rate_changes: Vec<(Time, u64)>,
    /// Scheduled base-RTT steps applied to every flow: at each `Time`,
    /// all paths become the symmetric split of the new `Duration`.
    /// In-flight packets keep their old delay.
    pub rtt_changes: Vec<(Time, Duration)>,
    /// Optional path impairment layer ("network weather"): seeded random
    /// loss, reordering jitter, and duplication per direction. `None`
    /// (the default) leaves the path ideal and the simulation byte-for-
    /// byte identical to a build without the layer.
    pub impairments: Option<LinkImpairments>,
    /// Physical buffer (Table 1: 40 000 packets).
    pub buffer_bytes: usize,
    /// TCP flow groups.
    pub tcp: Vec<FlowGroup>,
    /// UDP groups.
    pub udp: Vec<UdpGroup>,
    /// Total simulated time.
    pub duration: Time,
    /// Warm-up excluded from aggregates.
    pub warmup: Duration,
    /// Time-series sampling interval.
    pub sample_interval: Duration,
    /// RNG seed.
    pub seed: u64,
    /// Execution backend. [`Scenario::run`] executes the packet path for
    /// [`Backend::Packet`] and [`Backend::Hybrid`] (the latter with the
    /// background aggregate attached); [`Backend::Fluid`] scenarios run
    /// through [`crate::backend::run_fluid`] instead.
    pub backend: Backend,
    /// Hybrid-mode background populations, carried by the fluid engine.
    /// Ignored (and the run is pure packet-level, bit for bit) unless
    /// `backend` is [`Backend::Hybrid`] and the total count is non-zero.
    pub background: Vec<BgGroup>,
}

impl Scenario {
    /// A scenario skeleton with the paper's defaults.
    pub fn new(aqm: AqmKind, rate_bps: u64) -> Self {
        Scenario {
            aqm,
            rate_bps,
            rate_changes: Vec::new(),
            rtt_changes: Vec::new(),
            impairments: None,
            buffer_bytes: 40_000 * 1500,
            tcp: Vec::new(),
            udp: Vec::new(),
            duration: Time::from_secs(100),
            warmup: Duration::from_secs(20),
            sample_interval: Duration::from_secs(1),
            seed: 1,
            backend: Backend::Packet,
            background: Vec::new(),
        }
    }

    /// Execute the scenario.
    pub fn run(&self) -> RunResult {
        self.run_prepared(|_| {})
    }

    /// [`Scenario::run`] with a hook that runs on the freshly built `Sim`
    /// before any flow is added — the seam where a driver attaches trace
    /// sinks (e.g. a Perfetto timeline exporter). Sinks are pure
    /// observers, so a prepared run's results are bit-identical to a bare
    /// [`Scenario::run`].
    pub fn run_prepared(&self, prepare: impl FnOnce(&mut Sim)) -> RunResult {
        let queue = QueueConfig {
            rate_bps: self.rate_bps,
            buffer_bytes: self.buffer_bytes,
        };
        let mut sim = Sim::with_qdisc(
            SimConfig {
                queue,
                seed: self.seed,
                monitor: MonitorConfig {
                    sample_interval: self.sample_interval,
                    warmup: self.warmup,
                    ..MonitorConfig::default()
                },
            },
            self.aqm.build_qdisc(queue),
        );
        if let Some(imp) = self.impairments {
            if !imp.is_off() {
                sim.core.set_impairments(imp);
            }
        }
        // Metrics are a pure observer (see `pi2_netsim::metrics`), so
        // enabling them unconditionally cannot change any run's outcome —
        // it just gives every sweep cell a registry snapshot for free.
        sim.core.enable_metrics();
        // Hybrid mode: attach the fluid background aggregate. A zero-flow
        // background attaches nothing at all, so such a "hybrid" run is
        // the packet run, bit for bit (the equivalence oracle in
        // `tests/hybrid.rs` holds this).
        if self.backend == Backend::Hybrid
            && self.background.iter().map(|g| g.count).sum::<usize>() > 0
        {
            let agg = FluidBackground::new(&self.background, &self.aqm, self.rate_bps)
                .unwrap_or_else(|e| panic!("hybrid backend: {e}"));
            sim.attach_background(Box::new(agg));
        }
        prepare(&mut sim);
        // Pre-size the measurement vectors so per-packet recording never
        // reallocates mid-run (before add_flow, so per-flow vectors pick
        // up the same hints). The packet estimate assumes MTU-sized
        // segments at full utilization, capped to bound the up-front
        // footprint for very long/fast runs.
        let expected_samples =
            (self.duration.as_secs_f64() / self.sample_interval.as_secs_f64()).ceil() as usize + 2;
        let expected_pkts =
            (self.rate_bps as f64 * self.duration.as_secs_f64() / (8.0 * 1500.0)) as usize;
        sim.core
            .monitor
            .reserve(expected_samples, expected_pkts.min(1 << 21));
        let mut flow_ids = Vec::new();
        for group in &self.tcp {
            for _ in 0..group.count {
                let cc = group.cc;
                let ecn = group.ecn;
                let tcp = group.tcp;
                let id = sim.add_flow(
                    PathConf::symmetric(group.rtt),
                    &group.label,
                    group.start,
                    move |id| Box::new(TcpSource::new(id, cc, ecn, tcp)),
                );
                if let Some(stop) = group.stop {
                    sim.stop_flow_at(id, stop);
                }
                flow_ids.push(id);
            }
        }
        for group in &self.udp {
            for _ in 0..group.count {
                let rate = group.rate_bps;
                let size = group.pkt_size;
                let id = sim.add_flow(
                    PathConf::symmetric(group.rtt),
                    &group.label,
                    group.start,
                    move |id| Box::new(UdpCbrSource::new(id, rate, size, Ecn::NotEct)),
                );
                if let Some(stop) = group.stop {
                    sim.stop_flow_at(id, stop);
                }
                flow_ids.push(id);
            }
        }
        for &(at, rate) in &self.rate_changes {
            sim.set_rate_at(at, rate);
        }
        for &(at, rtt) in &self.rtt_changes {
            for &id in &flow_ids {
                sim.set_rtt_at(id, at, rtt);
            }
        }
        sim.run_until(self.duration);
        let metrics = sim.core.take_metrics();
        if let Some(m) = &metrics {
            // Pure read of the finished run's registry: a live-ops
            // observer (pi2sim --serve) folds it into its served
            // snapshot. No observer installed → no-op.
            crate::runner::notify_cell_metrics(m);
        }
        let background = sim.background().map(|bg| BackgroundRun {
            flow_count: bg.agg.flow_count(),
            bg_bytes: bg.bg_bytes,
            ticks: bg.ticks,
            series: bg
                .series
                .iter()
                .map(|&(t, bps)| (t.as_secs_f64(), bps))
                .collect(),
        });
        RunResult {
            aqm: self.aqm.name(),
            monitor: sim.core.monitor.clone(),
            counters: sim.core.counters.clone(),
            rate_bps: sim.core.queue.rate_bps(),
            impair: sim.core.impairments().map(|i| i.stats()),
            metrics,
            background,
        }
    }
}

/// The output of one scenario run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// AQM name.
    pub aqm: &'static str,
    /// Full measurement state.
    pub monitor: Monitor,
    /// The always-on event counters (full run, warmup included).
    pub counters: TraceCounts,
    /// Final link rate (after any changes).
    pub rate_bps: u64,
    /// Impairment-layer accounting (offered/lost/duplicated per
    /// direction); `None` when the scenario ran with an ideal path.
    pub impair: Option<ImpairStats>,
    /// The run's metrics registry (histograms + counters; see
    /// [`pi2_netsim::metrics`]). `Some` for every [`Scenario::run`];
    /// `None` only for hand-built results.
    pub metrics: Option<Box<SimMetrics>>,
    /// Hybrid-mode background accounting (aggregate flow count, served
    /// volume, the rate track); `None` for pure packet runs.
    pub background: Option<BackgroundRun>,
}

impl RunResult {
    /// Mean post-warm-up throughput (Mb/s) pooled over a label.
    pub fn tput_mbps(&self, label: &str) -> f64 {
        self.monitor.pooled_mean_tput_mbps(label)
    }

    /// *Per-flow* mean throughput for a label (pooled / flow count).
    pub fn per_flow_tput_mbps(&self, label: &str) -> f64 {
        let n = self.monitor.flows_labelled(label).len();
        if n == 0 {
            0.0
        } else {
            self.tput_mbps(label) / n as f64
        }
    }

    /// Queue-delay summary over per-packet sojourns (ms).
    pub fn delay_summary(&self) -> Summary {
        Summary::of_f32(&self.monitor.sojourn_ms)
    }

    /// Applied-probability summary for a label (percent).
    pub fn prob_summary(&self, label: &str) -> Summary {
        let samples: Vec<f64> = self
            .monitor
            .pooled_probs(label)
            .iter()
            .map(|&p| p as f64 * 100.0)
            .collect();
        Summary::of(&samples)
    }

    /// Link-utilization summary (percent of capacity).
    pub fn util_summary(&self) -> Summary {
        let samples: Vec<f64> = self
            .monitor
            .util_samples()
            .iter()
            .map(|&u| (u as f64 * 100.0).min(100.0))
            .collect();
        Summary::of(&samples)
    }

    /// The `(t, queue delay ms)` series.
    pub fn qdelay_series(&self) -> Vec<(f64, f64)> {
        self.monitor.qdelay_series()
    }

    /// The `(t, total Mb/s)` series.
    pub fn tput_series(&self) -> Vec<(f64, f64)> {
        self.monitor.total_tput_series()
    }

    /// One-line metrics summary for sweep/grid output: sojourn P50/P99
    /// (ms) from the registry histogram plus the dispatch-loop event
    /// total. Empty string when metrics were not collected.
    pub fn metrics_summary(&self) -> String {
        let Some(m) = self.metrics.as_deref() else {
            return String::new();
        };
        format!(
            "sojourn p50 {:.2} ms p99 {:.2} ms ({} events)",
            m.sojourn().quantile(0.5) as f64 / 1e6,
            m.sojourn().quantile(0.99) as f64 / 1e6,
            m.events_processed(),
        )
    }

    /// One-line event-counter summary for sweep output.
    pub fn counter_summary(&self) -> String {
        let t = self.counters.totals();
        format!(
            "enq {} mark {} drop {} deq {} ({} aqm updates)",
            t.enqueued, t.marked, t.dropped, t.dequeued, self.counters.aqm_updates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_runs_and_reports() {
        let mut sc = Scenario::new(AqmKind::pi2_default(), 10_000_000);
        sc.tcp.push(FlowGroup::new(
            2,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "reno",
            Duration::from_millis(50),
        ));
        sc.duration = Time::from_secs(30);
        sc.warmup = Duration::from_secs(10);
        let r = sc.run();
        let tput = r.tput_mbps("reno");
        assert!(tput > 8.0, "throughput {tput:.1} Mb/s");
        assert!(r.delay_summary().n > 0);
        assert_eq!(r.aqm, "pi2");
        // The always-on counters agree with the monitor's accounting.
        let t = r.counters.totals();
        assert!(t.enqueued > 0 && t.dequeued > 0);
        let m_drops: u64 = r.monitor.flows.iter().map(|f| f.dropped).sum();
        let m_marks: u64 = r.monitor.flows.iter().map(|f| f.marked).sum();
        let m_deqs: u64 = r.monitor.flows.iter().map(|f| f.dequeued_pkts).sum();
        assert_eq!(t.dropped, m_drops);
        assert_eq!(t.marked, m_marks);
        assert_eq!(t.dequeued, m_deqs);
        assert!(r.counter_summary().contains("aqm updates"));
    }

    #[test]
    fn flow_groups_stop_on_schedule() {
        let mut sc = Scenario::new(AqmKind::pi2_default(), 10_000_000);
        sc.tcp.push(
            FlowGroup::new(
                1,
                CcKind::Reno,
                EcnSetting::NotEcn,
                "early",
                Duration::from_millis(20),
            )
            .between(Time::ZERO, Time::from_secs(5)),
        );
        sc.tcp.push(FlowGroup::new(
            1,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "late",
            Duration::from_millis(20),
        ));
        sc.duration = Time::from_secs(20);
        sc.warmup = Duration::ZERO;
        let r = sc.run();
        // The early flow stopped at 5 s; the late flow should have moved
        // far more data.
        let early = r.tput_mbps("early");
        let late = r.tput_mbps("late");
        assert!(late > 2.0 * early, "early {early:.1} vs late {late:.1}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut sc = Scenario::new(AqmKind::pie_default(), 10_000_000);
        sc.tcp.push(FlowGroup::new(
            3,
            CcKind::Cubic,
            EcnSetting::NotEcn,
            "cubic",
            Duration::from_millis(30),
        ));
        sc.duration = Time::from_secs(15);
        let a = sc.run();
        let b = sc.run();
        assert_eq!(
            a.monitor.flows[0].dequeued_bytes,
            b.monitor.flows[0].dequeued_bytes
        );
        assert_eq!(a.monitor.sojourn_ms.len(), b.monitor.sojourn_ms.len());
    }

    #[test]
    fn rate_changes_apply() {
        let mut sc = Scenario::new(AqmKind::pi2_default(), 100_000_000);
        sc.rate_changes = vec![(Time::from_secs(5), 20_000_000)];
        sc.tcp.push(FlowGroup::new(
            2,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "reno",
            Duration::from_millis(20),
        ));
        sc.duration = Time::from_secs(10);
        let r = sc.run();
        assert_eq!(r.rate_bps, 20_000_000);
    }
}
