//! Deterministic parallel scenario execution.
//!
//! The paper's headline results are parameter sweeps — the Figures 15–18
//! coexistence grid alone is 100 independent 100-second simulations — and
//! every cell is an isolated, seeded, deterministic run. This module
//! fans such sweeps out over OS threads while keeping the output
//! **bit-identical to a serial run regardless of thread count**:
//!
//! * work items are claimed from an atomic index (no work-stealing
//!   queues, no channels — `std` only);
//! * each worker computes `f(&items[i])` for the indices it claims and
//!   remembers the pairing `(i, result)`;
//! * results are written back into their slot *by index* after all
//!   workers join, so the returned `Vec` has the same order — and, since
//!   each run is seeded and self-contained, the same bits — as
//!   `items.iter().map(f).collect()`.
//!
//! Thread count comes from the `PI2_THREADS` environment variable,
//! defaulting to [`std::thread::available_parallelism`]. `PI2_THREADS=1`
//! degenerates to an inline serial loop (no threads spawned at all),
//! which is also the fallback wherever parallelism is unavailable.
//!
//! The sweep entry points (`grid::run_grid`, `fig19::fig19`, the
//! ablation and extension sweeps) all route through [`par_map`], so a
//! single knob governs every figure-regeneration binary.

use crate::scenario::{RunResult, Scenario};
use pi2_netsim::SimMetrics;
use std::io::{IsTerminal, Write};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A process-wide hook into sweep execution, for live-ops drivers (the
/// `pi2sim --serve` HTTP endpoint). All methods default to no-ops; with
/// no observer installed the runner behaves exactly as before — and
/// because an observer only *reads* results the workers already produced,
/// installing one cannot change any run's outcome (the bit-identity
/// contract every observer in this workspace obeys).
pub trait SweepObserver: Send + Sync {
    /// A work item finished; `done` of `total` items are complete. Called
    /// from worker threads, possibly concurrently.
    fn cell_done(&self, done: usize, total: usize) {
        let _ = (done, total);
    }

    /// A scenario run produced its metrics registry (called by
    /// [`Scenario::run`] and the topology runner before returning, from
    /// worker threads). Merging these as they arrive reproduces the
    /// [`merged_metrics`] fold commutatively — counters and histogram
    /// buckets add — so a mid-sweep scrape sees a valid partial snapshot.
    fn cell_metrics(&self, metrics: &SimMetrics) {
        let _ = metrics;
    }

    /// Polled by workers at item boundaries: return true to stop claiming
    /// new items (graceful cancel).
    fn cancelled(&self) -> bool {
        false
    }

    /// The sweep stopped early because [`SweepObserver::cancelled`]
    /// returned true; `done` of `total` items completed. The process
    /// exits with status 130 right after this returns.
    fn on_cancel(&self, done: usize, total: usize) {
        let _ = (done, total);
    }
}

/// The installed observer, if any. A plain `RwLock<Option<Arc>>` — reads
/// are one uncontended lock per work item, noise against a multi-second
/// scenario run.
static SWEEP_OBSERVER: RwLock<Option<Arc<dyn SweepObserver>>> = RwLock::new(None);

/// Install a process-wide [`SweepObserver`] (replacing any previous one).
pub fn install_observer(obs: Arc<dyn SweepObserver>) {
    *SWEEP_OBSERVER.write().unwrap() = Some(obs);
}

/// Remove the installed observer.
pub fn clear_observer() {
    *SWEEP_OBSERVER.write().unwrap() = None;
}

/// Snapshot the installed observer handle.
fn observer() -> Option<Arc<dyn SweepObserver>> {
    SWEEP_OBSERVER.read().unwrap().clone()
}

/// Forward a finished run's metrics to the installed observer, if any.
/// Called by the scenario/topology runners on their worker threads.
pub(crate) fn notify_cell_metrics(metrics: &SimMetrics) {
    if let Some(obs) = observer() {
        obs.cell_metrics(metrics);
    }
}

/// The worker count: `PI2_THREADS` if set (minimum 1), otherwise the
/// machine's available parallelism.
pub fn threads() -> usize {
    match std::env::var("PI2_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) => n.max(1),
        None => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

/// Rate-limited stderr progress for long sweeps: `done/total` cells and
/// elapsed wall time, rewritten in place (`\r`). Output goes to stderr
/// only, so sweep stdout (which CI diffs for determinism) is untouched.
/// Silent when stderr is not a terminal, when `PI2_QUIET=1`, or for
/// single-item batches.
struct Progress {
    enabled: bool,
    start: Instant,
    done: AtomicUsize,
    total: usize,
    /// Elapsed ms at the last print, for rate limiting.
    last_print_ms: AtomicU64,
}

impl Progress {
    /// Minimum interval between reprints; a terminal redraw every 200 ms
    /// is smooth to a human and negligible to the sweep.
    const MIN_INTERVAL_MS: u64 = 200;

    fn new(total: usize) -> Self {
        let quiet = matches!(
            std::env::var("PI2_QUIET").ok().as_deref(),
            Some(v) if !matches!(v, "0" | "off" | "false")
        );
        Progress {
            enabled: total > 1 && !quiet && std::io::stderr().is_terminal(),
            start: Instant::now(),
            done: AtomicUsize::new(0),
            total,
            last_print_ms: AtomicU64::new(0),
        }
    }

    /// Record one completed item; maybe redraw the progress line.
    /// Returns the completed-item count after this one.
    fn note_done(&self) -> usize {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return done;
        }
        let elapsed = self.start.elapsed();
        let now_ms = elapsed.as_millis() as u64;
        let last = self.last_print_ms.load(Ordering::Relaxed);
        let finished = done == self.total;
        if !finished && now_ms.saturating_sub(last) < Self::MIN_INTERVAL_MS {
            return done;
        }
        // One winner per interval; losers (and any race on the final
        // item's extra redraw) just skip — progress output is best-effort.
        if self
            .last_print_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && !finished
        {
            return done;
        }
        let mut err = std::io::stderr().lock();
        let _ = write!(
            err,
            "\r[pi2 sweep] {done}/{} cells done, {:.1}s elapsed",
            self.total,
            elapsed.as_secs_f64()
        );
        if finished {
            let _ = writeln!(err);
        }
        let _ = err.flush();
        done
    }
}

/// Map `f` over `items` on `n_threads` workers, returning results in
/// item order. Output is identical to `items.iter().map(f).collect()`
/// for any `n_threads` ≥ 1 (given `f` depends only on its argument, as
/// every seeded scenario run does).
pub fn par_map_threads<T, R, F>(n_threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = n_threads.clamp(1, n.max(1));
    let progress = Progress::new(n);
    let obs = observer();
    let note = |r: R| {
        let done = progress.note_done();
        if let Some(obs) = &obs {
            obs.cell_done(done, n);
        }
        r
    };
    let cancelled = || obs.as_ref().is_some_and(|o| o.cancelled());
    if workers <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for item in items {
            if cancelled() {
                break;
            }
            out.push(note(f(item)));
        }
        if out.len() < n {
            cancel_exit(&obs, out.len(), n);
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let batches: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut claimed = Vec::new();
                    loop {
                        // Cancellation is polled only at item boundaries:
                        // an in-flight run always completes, so every
                        // produced result is a full, deterministic cell.
                        if cancelled() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        claimed.push((i, note(f(&items[i]))));
                    }
                    claimed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("runner worker panicked"))
            .collect()
    });
    let mut filled = 0usize;
    for (i, r) in batches.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "work index {i} claimed twice");
        slots[i] = Some(r);
        filled += 1;
    }
    if filled < n {
        cancel_exit(&obs, filled, n);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every work index claimed exactly once"))
        .collect()
}

/// A sweep stopped early on an observer's cancel flag: notify the
/// observer and leave with the conventional interrupted-exit status. A
/// partially-filled result vector never escapes — callers are spared a
/// "which cells are real" protocol they could not honour mid-sweep.
fn cancel_exit(obs: &Option<Arc<dyn SweepObserver>>, done: usize, total: usize) -> ! {
    if let Some(obs) = obs {
        obs.on_cancel(done, total);
    }
    eprintln!("[pi2 sweep] cancelled after {done}/{total} cells");
    std::process::exit(130);
}

/// [`par_map_threads`] with the [`threads`] default (the `PI2_THREADS`
/// knob). This is the routing point for all sweep binaries.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_threads(threads(), items, f)
}

/// Run a batch of scenarios in parallel. Results arrive in scenario
/// order, bit-identical to calling [`Scenario::run`] serially.
pub fn run_all(scenarios: &[Scenario]) -> Vec<RunResult> {
    par_map(scenarios, Scenario::run)
}

/// [`run_all`] with an explicit worker count (for tests and callers that
/// must not consult the environment).
pub fn run_all_threads(n_threads: usize, scenarios: &[Scenario]) -> Vec<RunResult> {
    par_map_threads(n_threads, scenarios, Scenario::run)
}

/// Fold every run's metrics registry into one fleet-level [`SimMetrics`].
/// Results arrive from [`run_all`]/[`par_map`] in item order regardless
/// of thread count, and this merges in that same order, so the merged
/// snapshot is byte-identical for any `PI2_THREADS` (asserted by
/// `tests/metrics_obs.rs`). Returns `None` when no run carried metrics.
pub fn merged_metrics(results: &[RunResult]) -> Option<SimMetrics> {
    let mut iter = results.iter().filter_map(|r| r.metrics.as_deref());
    let first = iter.next()?.clone();
    Some(iter.fold(first, |mut acc, m| {
        acc.merge(m);
        acc
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_item_order() {
        let items: Vec<usize> = (0..97).collect();
        for threads in [1, 2, 4, 13] {
            let out = par_map_threads(threads, &items, |&i| i * i);
            assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_map_handles_degenerate_sizes() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map_threads(8, &empty, |&x| x).is_empty());
        assert_eq!(par_map_threads(8, &[42u32], |&x| x + 1), vec![43]);
        // More threads than items must not deadlock or duplicate work.
        assert_eq!(par_map_threads(64, &[1u32, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn par_map_is_deterministic_for_stateful_work() {
        // Each item seeds its own RNG — the model of a scenario run. The
        // parallel result must be bit-identical to serial for any thread
        // count, even though workers interleave arbitrarily.
        let work = |&seed: &u64| {
            let mut rng = pi2_simcore::Rng::new(seed);
            (0..1000).map(|_| rng.next_u64() & 0xffff).sum::<u64>()
        };
        let seeds: Vec<u64> = (0..40).collect();
        let serial: Vec<u64> = seeds.iter().map(work).collect();
        for threads in [2, 4, 8] {
            assert_eq!(par_map_threads(threads, &seeds, work), serial);
        }
    }

    #[test]
    fn merged_metrics_identical_across_thread_counts() {
        use crate::scenario::{AqmKind, FlowGroup, Scenario};
        use pi2_simcore::{Duration, Time};
        use pi2_transport::{CcKind, EcnSetting};
        let scenarios: Vec<Scenario> = (0..4)
            .map(|i| {
                let mut sc = Scenario::new(AqmKind::pi2_default(), 4_000_000);
                sc.tcp.push(FlowGroup::new(
                    1,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    "reno",
                    Duration::from_millis(20),
                ));
                sc.duration = Time::from_secs(3);
                sc.warmup = Duration::from_secs(1);
                sc.seed = 100 + i;
                sc
            })
            .collect();
        let snapshot = |n_threads| {
            let results = run_all_threads(n_threads, &scenarios);
            merged_metrics(&results)
                .expect("every scenario run carries metrics")
                .registry()
                .to_json()
        };
        let serial = snapshot(1);
        assert!(serial.contains("pi2_enqueued_total"));
        assert_eq!(serial, snapshot(2), "2 workers must merge to the serial bytes");
        assert_eq!(serial, snapshot(4), "4 workers must merge to the serial bytes");
    }

    #[test]
    fn threads_env_knob_parses() {
        // Serialized against other env-reading tests by running in one
        // test body; restore afterwards.
        let saved = std::env::var("PI2_THREADS").ok();
        std::env::set_var("PI2_THREADS", "3");
        assert_eq!(threads(), 3);
        std::env::set_var("PI2_THREADS", "0");
        assert_eq!(threads(), 1, "0 clamps to 1");
        std::env::set_var("PI2_THREADS", "not-a-number");
        assert!(threads() >= 1, "garbage falls back to the default");
        match saved {
            Some(v) => std::env::set_var("PI2_THREADS", v),
            None => std::env::remove_var("PI2_THREADS"),
        }
    }
}
