//! The DualQ Coupled extension experiment ("Data Centre to the Home").
//!
//! The single-queue arrangement evaluated in the paper forces Scalable
//! traffic to suffer the Classic queue's 20 ms. Section 7 points to the
//! DualQ as the recommended deployment; this experiment demonstrates it:
//! DCTCP and Cubic share a DualPI2 bottleneck at ≈ equal rates while the
//! DCTCP packets see sub-millisecond-to-low-millisecond queuing and the
//! Cubic packets their usual near-target delay.

use pi2_aqm::{DualPi2, DualPi2Config};
use pi2_netsim::{MonitorConfig, PathConf, Sim, SimConfig};
use pi2_simcore::{Duration, Time};
use pi2_stats::Summary;
use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};

/// Result of one DualQ run.
#[derive(Clone, Debug)]
pub struct DualQResult {
    /// Per-flow Cubic throughput (Mb/s).
    pub cubic_mbps: f64,
    /// Per-flow DCTCP throughput (Mb/s).
    pub dctcp_mbps: f64,
    /// Queue delay seen by DCTCP (L-queue) packets, ms.
    pub l_delay: Summary,
    /// Queue delay seen by Cubic (C-queue) packets, ms.
    pub c_delay: Summary,
    /// Mean utilization (%).
    pub util_pct: f64,
}

/// Run `n_cubic` Cubic + `n_dctcp` DCTCP flows over a DualPI2 bottleneck.
pub fn run(
    rate_bps: u64,
    rtt: Duration,
    n_cubic: usize,
    n_dctcp: usize,
    duration_s: u64,
    seed: u64,
) -> DualQResult {
    let mut sim = Sim::with_qdisc(
        SimConfig {
            seed,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(duration_s as i64 / 3),
                record_flow_sojourns: true,
                ..MonitorConfig::default()
            },
            ..SimConfig::default()
        },
        Box::new(DualPi2::new(DualPi2Config::for_link(rate_bps))),
    );
    for _ in 0..n_cubic {
        sim.add_flow(PathConf::symmetric(rtt), "cubic", Time::ZERO, |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Cubic,
                EcnSetting::NotEcn,
                TcpConfig::default(),
            ))
        });
    }
    for _ in 0..n_dctcp {
        sim.add_flow(PathConf::symmetric(rtt), "dctcp", Time::ZERO, |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Dctcp,
                EcnSetting::Scalable,
                TcpConfig::default(),
            ))
        });
    }
    sim.run_until(Time::from_secs(duration_s));
    let m = &sim.core.monitor;
    let span = m.measurement_span();
    let per_flow = |label: &str, n: usize| {
        if n == 0 {
            0.0
        } else {
            m.pooled_mean_tput_mbps(label) / n as f64
        }
    };
    let util_samples = m.util_samples();
    let util: f64 = if util_samples.is_empty() {
        0.0
    } else {
        100.0 * util_samples.iter().map(|&x| x as f64).sum::<f64>()
            / util_samples.len() as f64
    };
    let _ = span;
    DualQResult {
        cubic_mbps: per_flow("cubic", n_cubic),
        dctcp_mbps: per_flow("dctcp", n_dctcp),
        l_delay: Summary::of_f32(&m.pooled_sojourns("dctcp")),
        c_delay: Summary::of_f32(&m.pooled_sojourns("cubic")),
        util_pct: util,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dualq_gives_scalable_low_latency_and_balance() {
        let r = run(
            40_000_000,
            Duration::from_millis(10),
            1,
            1,
            40,
            0xd0a1,
        );
        // Rate balance within a small factor of 1. The DualQ equalizes
        // *windows*; rates additionally scale with 1/RTT, and the DCTCP
        // flow's RTT excludes the 20 ms Classic queue it no longer stands
        // in — so a ratio below 1 (toward ~RTT_L/RTT_C * 1.68) is the
        // expected, documented behaviour (cf. RFC 9332's discussion).
        let ratio = r.cubic_mbps / r.dctcp_mbps;
        assert!(
            (0.25..2.5).contains(&ratio),
            "DualQ rate ratio {ratio:.2} (cubic {:.1}, dctcp {:.1})",
            r.cubic_mbps,
            r.dctcp_mbps
        );
        // The headline: L-queue delay is an order of magnitude below the
        // Classic queue's.
        assert!(
            r.l_delay.p99 < r.c_delay.p50,
            "L p99 {:.2} ms should undercut C median {:.2} ms",
            r.l_delay.p99,
            r.c_delay.p50
        );
        assert!(
            r.l_delay.mean < 5.0,
            "L-queue mean delay {:.2} ms should be a few ms at most",
            r.l_delay.mean
        );
        // No throughput sacrifice.
        assert!(r.util_pct > 85.0, "utilization {:.1}%", r.util_pct);
    }

    #[test]
    fn dualq_works_with_classic_only_traffic() {
        // With no Scalable flows the DualQ degenerates to PI2 behaviour.
        let r = run(10_000_000, Duration::from_millis(40), 3, 0, 40, 7);
        assert!(r.cubic_mbps * 3.0 > 8.0, "cubic total {:.1}", r.cubic_mbps * 3.0);
        assert!(
            (5.0..45.0).contains(&r.c_delay.mean),
            "C delay {:.1} ms",
            r.c_delay.mean
        );
    }

    #[test]
    fn dualq_works_with_scalable_only_traffic() {
        // With no Classic traffic the native ramp governs: ultra-low delay.
        let r = run(10_000_000, Duration::from_millis(10), 0, 3, 40, 8);
        assert!(r.dctcp_mbps * 3.0 > 8.0, "dctcp total {:.1}", r.dctcp_mbps * 3.0);
        assert!(
            r.l_delay.mean < 5.0,
            "L-only mean delay {:.2} ms",
            r.l_delay.mean
        );
    }
}
