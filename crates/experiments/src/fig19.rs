//! Figures 19 and 20: coexistence across flow-count combinations.
//!
//! 40 Mb/s, RTT 10 ms. The number of Cubic flows (A) and ECN flows (B)
//! sweeps through the combinations (0,10), (1,9), …, (10,0); Figure 19
//! plots the per-flow rate ratio A/B, Figure 20 the normalized per-flow
//! rates (per-flow rate ÷ fair share) with P1/mean/P99 across flows.

use crate::scenario::{AqmKind, FlowGroup, Scenario};
use crate::grid::Pair;
use pi2_simcore::{Duration, Time};
use pi2_transport::{CcKind, EcnSetting};

/// One combination's result.
#[derive(Clone, Debug)]
pub struct ComboResult {
    /// AQM name.
    pub aqm: &'static str,
    /// Flow pair type.
    pub pair: Pair,
    /// Number of Cubic (A) flows.
    pub a: usize,
    /// Number of ECN (B) flows.
    pub b: usize,
    /// Per-flow rate ratio A/B (`None` when either side is absent).
    pub ratio: Option<f64>,
    /// Normalized per-flow rates of the A flows (rate ÷ fair share).
    pub norm_a: Vec<f64>,
    /// Normalized per-flow rates of the B flows.
    pub norm_b: Vec<f64>,
}

/// The combination axis used in the figures.
pub fn combos() -> Vec<(usize, usize)> {
    (0..=10).map(|a| (a, 10 - a)).collect()
}

/// Run one combination.
pub fn run_combo(
    aqm: AqmKind,
    pair: Pair,
    a: usize,
    b: usize,
    duration_s: u64,
    seed: u64,
) -> ComboResult {
    let rtt = Duration::from_millis(10);
    let link_bps: u64 = 40_000_000;
    let mut sc = Scenario::new(aqm, link_bps);
    if a > 0 {
        sc.tcp.push(FlowGroup::new(
            a,
            CcKind::Cubic,
            EcnSetting::NotEcn,
            "cubic",
            rtt,
        ));
    }
    if b > 0 {
        let g = match pair {
            Pair::CubicVsEcnCubic => {
                FlowGroup::new(b, CcKind::Cubic, EcnSetting::Classic, pair.ecn_label(), rtt)
            }
            Pair::CubicVsDctcp => {
                FlowGroup::new(b, CcKind::Dctcp, EcnSetting::Scalable, pair.ecn_label(), rtt)
            }
        };
        sc.tcp.push(g);
    }
    sc.duration = Time::from_secs(duration_s);
    sc.warmup = Duration::from_secs(duration_s as i64 / 3);
    sc.seed = seed;
    let r = sc.run();
    let span = r.monitor.measurement_span();
    let fair = link_bps as f64 / 1e6 / (a + b) as f64;
    let per_flow = |label: &str| -> Vec<f64> {
        r.monitor
            .flows_labelled(label)
            .iter()
            .map(|&i| r.monitor.flows[i].mean_tput_mbps(span) / fair)
            .collect()
    };
    let norm_a = per_flow("cubic");
    let norm_b = per_flow(pair.ecn_label());
    let ratio = if a > 0 && b > 0 {
        let ra = r.per_flow_tput_mbps("cubic");
        let rb = r.per_flow_tput_mbps(pair.ecn_label());
        (rb > 0.0).then(|| ra / rb)
    } else {
        None
    };
    ComboResult {
        aqm: r.aqm,
        pair,
        a,
        b,
        ratio,
        norm_a,
        norm_b,
    }
}

/// The full figure: both pairs × both AQMs × all combinations, runs
/// fanned out over the parallel [`crate::runner`].
pub fn fig19(duration_s: u64) -> Vec<ComboResult> {
    let mut work = Vec::new();
    for pair in [Pair::CubicVsEcnCubic, Pair::CubicVsDctcp] {
        for aqm in [AqmKind::pie_default(), AqmKind::coupled_default()] {
            for (a, b) in combos() {
                if a + b == 0 {
                    continue;
                }
                work.push((aqm.clone(), pair, a, b, 0x19 + (a * 16 + b) as u64));
            }
        }
    }
    crate::runner::par_map(&work, |(aqm, pair, a, b, seed)| {
        run_combo(aqm.clone(), *pair, *a, *b, duration_s, *seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combos_cover_the_axis() {
        let c = combos();
        assert_eq!(c.len(), 11);
        assert_eq!(c[0], (0, 10));
        assert_eq!(c[10], (10, 0));
        assert!(c.iter().all(|&(a, b)| a + b == 10));
    }

    #[test]
    fn balance_holds_at_asymmetric_counts() {
        // 8 Cubic vs 2 DCTCP under the coupled AQM: still ≈equal per-flow.
        let r = run_combo(AqmKind::coupled_default(), Pair::CubicVsDctcp, 8, 2, 30, 5);
        let ratio = r.ratio.unwrap();
        assert!(
            (0.35..3.0).contains(&ratio),
            "per-flow ratio at 8:2 should be ≈1, got {ratio:.2}"
        );
    }

    #[test]
    fn normalized_rates_sum_to_capacity() {
        let r = run_combo(AqmKind::coupled_default(), Pair::CubicVsDctcp, 5, 5, 30, 5);
        let total: f64 = r.norm_a.iter().chain(r.norm_b.iter()).sum();
        // 10 flows at fair share 1.0 each: total ≈ 10 (minus AQM headroom).
        assert!(
            (8.0..10.5).contains(&total),
            "normalized rates sum to {total:.1}, expected ≈10"
        );
    }
}
