//! # pi2-experiments — the paper's evaluation, as runnable scenarios
//!
//! One module per experiment family, each building dumbbell scenarios from
//! the building blocks in [`scenario`] and returning plain data structures
//! that the bench binaries in `pi2-bench` print as tables. The mapping to
//! the paper's figures is catalogued in `DESIGN.md`:
//!
//! * [`fig06`] — PI (fixed gains) vs PI2 under varying traffic intensity
//!   at 100 Mb/s (Figure 6); the same runner at 10 Mb/s is Figure 13;
//! * [`fig11`] — queue delay and throughput under light/heavy/mixed loads
//!   (Figure 11);
//! * [`fig12`] — varying link capacity (Figure 12);
//! * [`fig14`] — queue-delay CDFs at 5 ms and 20 ms targets (Figure 14);
//! * [`grid`] — the link×RTT coexistence grid behind Figures 15–18;
//! * [`fig19`] — flow-count combinations (Figures 19 and 20);
//! * [`appendix_a`] — steady-state window-law validation (Appendix A);
//! * [`ablation`] — k-sweep, gain-sweep, bare-PIE and encoder ablations.
//!
//! Sweeps execute through [`runner`] — a deterministic parallel executor
//! (`PI2_THREADS` env knob, default = available parallelism) whose output
//! is bit-identical to a serial run regardless of thread count.

pub mod ablation;
pub mod appendix_a;
pub mod backend;
pub mod dualq;
pub mod dynamics;
pub mod fig06;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig19;
pub mod grid;
pub mod isolation;
pub mod overload;
pub mod rttfair;
pub mod runner;
pub mod scenario;
pub mod shortflows;
pub mod topology;
pub mod workload;

pub use backend::{
    run_fluid, summarize_run, summarize_scenario_run, Backend, BackendSummary, BackgroundRun,
    BgGroup, FluidBackground, FluidRunResult,
};
pub use runner::{clear_observer, install_observer, merged_metrics, par_map, run_all, SweepObserver};
pub use scenario::{AqmKind, FlowGroup, RunResult, Scenario, UdpGroup};
pub use topology::{topology, TopologyKind, TopologyRun};
pub use workload::{mice_arrivals, MiceWorkload, Mouse};
