//! A vendored, std-only stand-in for the `proptest` crate.
//!
//! The workspace's tier-1 gate (`cargo build --release && cargo test -q`)
//! must resolve and run with **no network access**, so the real `proptest`
//! registry crate can never be fetched here. This crate implements the
//! exact API subset the workspace's `tests/proptests.rs` suites use, with
//! the same names and module paths, so the suites compile unchanged:
//!
//! - the [`proptest!`] macro, with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]`;
//! - [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`], [`prop_oneof!`];
//! - [`strategy::Strategy`] implemented for numeric `Range`s, tuples of
//!   strategies, [`strategy::Just`], [`prelude::any`] and
//!   `prop::collection::vec`, plus the `prop_map` combinator;
//! - a deterministic runner with `PROPTEST_CASES` / `PROPTEST_RNG_SEED`
//!   environment overrides and failure-seed persistence to the standard
//!   `tests/<file>.proptest-regressions` location (real-proptest entries
//!   with 256-bit seeds in an existing corpus are skipped, not choked on).
//!
//! Differences from the real crate, by design: no shrinking (a failure
//! reports the replayable case seed instead of a minimal input), and case
//! generation is deterministic per test name so CI failures reproduce
//! locally without any environment coupling.

pub mod strategy;
pub mod test_runner;

/// `prop::collection::vec` lives here, mirroring the real crate's path.
pub mod prop {
    pub mod collection {
        pub use crate::strategy::vec;
    }
}

/// Everything the test suites import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define property tests. Each `fn` becomes a `#[test]` (the attribute is
/// written in the source, as with the real crate) that generates inputs
/// from the given strategies and runs the body for a configurable number
/// of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __regressions = $crate::test_runner::regression_path(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                );
                $crate::test_runner::run(
                    &__regressions,
                    stringify!($name),
                    &($cfg),
                    |__rng: &mut $crate::test_runner::TestRng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        let mut __case = move || -> ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __case()
                    },
                );
            }
        )*
    };
}

/// Assert a condition inside a property test; on failure the case fails
/// (with its replayable seed) instead of unwinding immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                __a,
                __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __a,
                __b
            )));
        }
    }};
}

/// Discard the current case (it counts as neither pass nor fail).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Pick uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strat)),+])
    };
}
