//! The case runner: deterministic seed schedule, environment overrides,
//! panic capture, and failure-seed persistence compatible with the
//! `tests/<file>.proptest-regressions` convention.

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// Per-`proptest!` block configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of (non-rejected) cases to run per test. The
    /// `PROPTEST_CASES` environment variable overrides this — CI uses it
    /// to time-box the suites.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` discarded the inputs; try another case.
    Reject,
    /// A `prop_assert!`-family assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Construct the failure variant.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// The per-case RNG handed to strategies: splitmix64, seeded per case.
/// Cheap, full-period over its 64-bit state, and — the property the
/// regression corpus depends on — the stream is a pure function of the
/// seed.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator whose stream is determined entirely by `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Where the persisted failure seeds for `source_file` live:
/// `<manifest_dir>/tests/<stem>.proptest-regressions`, the same location
/// the real crate uses for suites under `tests/`.
pub fn regression_path(manifest_dir: &str, source_file: &str) -> String {
    let stem = Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("proptests");
    format!("{manifest_dir}/tests/{stem}.proptest-regressions")
}

/// Parse the persisted corpus. Lines look like `cc <hex> [# comment]`;
/// 16-or-fewer-digit payloads are our replayable u64 seeds, while the
/// real crate's 256-bit digests are recognised and skipped (we cannot
/// reconstruct their byte streams, but must not error on them).
pub fn read_seeds(path: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("cc ") else {
            continue;
        };
        let token = rest.split_whitespace().next().unwrap_or("");
        if token.len() <= 16 {
            if let Ok(seed) = u64::from_str_radix(token, 16) {
                seeds.push(seed);
            }
        }
    }
    seeds
}

/// Append a failing seed to the corpus (creating it, with the standard
/// header, if needed). Best-effort: persistence failures must not mask
/// the test failure itself.
fn persist_seed(path: &str, test_name: &str, seed: u64) {
    let entry = format!("cc {seed:016x}");
    if let Ok(existing) = std::fs::read_to_string(path) {
        if existing.lines().any(|l| l.trim().starts_with(&entry)) {
            return; // already recorded
        }
    }
    let header_needed = !Path::new(path).exists();
    let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) else {
        return;
    };
    if header_needed {
        let _ = writeln!(
            f,
            "# Seeds for failure cases proptest has generated in the past. It is\n\
             # automatically read and these particular cases re-run before any\n\
             # novel cases are generated.\n\
             #\n\
             # It is recommended to check this file in to source control so that\n\
             # everyone who runs the test benefits from these saved cases.",
        );
    }
    let _ = writeln!(f, "{entry} # seed for {test_name}");
}

enum CaseOutcome {
    Pass,
    Reject,
    Fail(String),
}

fn run_case(
    seed: u64,
    f: &mut dyn FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) -> CaseOutcome {
    let mut rng = TestRng::new(seed);
    match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(TestCaseError::Reject)) => CaseOutcome::Reject,
        Ok(Err(TestCaseError::Fail(msg))) => CaseOutcome::Fail(msg),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(|s| s.as_str())
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("panicked (non-string payload)");
            CaseOutcome::Fail(format!("panicked: {msg}"))
        }
    }
}

/// Run one property test: replay the persisted corpus first, then a
/// deterministic schedule of fresh cases. Panics (failing the enclosing
/// `#[test]`) on the first failing case, after persisting its seed.
pub fn run(
    regressions: &str,
    test_name: &str,
    cfg: &ProptestConfig,
    mut f: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    fn fail(regressions: &str, test_name: &str, seed: u64, phase: &str, msg: String) -> ! {
        persist_seed(regressions, test_name, seed);
        panic!(
            "[{test_name}] {phase} case failed (replayable seed cc {seed:016x}, \
             persisted to {regressions}; rerunning the test replays it first):\n{msg}"
        );
    }

    // 1. Replay every parseable persisted seed.
    for seed in read_seeds(regressions) {
        match run_case(seed, &mut f) {
            CaseOutcome::Pass | CaseOutcome::Reject => {}
            CaseOutcome::Fail(msg) => fail(regressions, test_name, seed, "persisted", msg),
        }
    }

    // 2. Fresh cases, from a schedule that is a pure function of the test
    // name (so failures reproduce anywhere) unless PROPTEST_RNG_SEED asks
    // for a different stream.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases);
    let base = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(test_name.as_bytes()));

    let mut passed = 0u32;
    let mut attempts = 0u64;
    let max_attempts = 10 * u64::from(cases) + 100; // prop_assume! runaway guard
    while passed < cases {
        if attempts >= max_attempts {
            panic!(
                "[{test_name}] gave up: {passed}/{cases} cases after {attempts} attempts \
                 (prop_assume! rejects nearly everything)"
            );
        }
        let seed = TestRng::new(base.wrapping_add(attempts)).next_u64();
        attempts += 1;
        match run_case(seed, &mut f) {
            CaseOutcome::Pass => passed += 1,
            CaseOutcome::Reject => {}
            CaseOutcome::Fail(msg) => fail(regressions, test_name, seed, "generated", msg),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("pi2-proptest-shim-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_str().unwrap().to_string()
    }

    #[test]
    fn rng_streams_are_seed_deterministic() {
        let mut a = TestRng::new(99);
        let mut b = TestRng::new(99);
        for _ in 0..128 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_ne!(TestRng::new(1).next_u64(), TestRng::new(2).next_u64());
    }

    #[test]
    fn unit_interval_stays_in_bounds() {
        let mut r = TestRng::new(4);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn regression_path_uses_the_test_file_stem() {
        assert_eq!(
            regression_path("/w/crates/stats", "crates/stats/tests/proptests.rs"),
            "/w/crates/stats/tests/proptests.proptest-regressions"
        );
    }

    #[test]
    fn corpus_parser_takes_u64_seeds_and_skips_real_proptest_digests() {
        let path = scratch("corpus-parse.proptest-regressions");
        std::fs::write(
            &path,
            "# header\n\
             cc 00000000000000ff # ours\n\
             cc 49be55cfb7923b8739eff94881784d1c740bc4a110af5d09162c94d18738d67b # real proptest\n\
             cc deadbeef\n\
             not a seed line\n",
        )
        .unwrap();
        assert_eq!(read_seeds(&path), vec![0xff, 0xdead_beef]);
        assert_eq!(read_seeds("/nonexistent/nope"), Vec::<u64>::new());
    }

    #[test]
    fn failing_case_persists_its_seed_and_replays_first() {
        let path = scratch("persist-cycle.proptest-regressions");
        let _ = std::fs::remove_file(&path);
        // A property that fails on even inputs: hit quickly, and the
        // failing value is a pure function of the case seed.
        let run_failing = |record: &mut Vec<u64>| {
            let record = std::cell::RefCell::new(record);
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                run(
                    &path,
                    "shim_self_test",
                    &ProptestConfig::with_cases(200),
                    |rng| {
                        let v = rng.next_u64();
                        record.borrow_mut().push(v);
                        if v % 2 == 0 {
                            Err(TestCaseError::fail("even"))
                        } else {
                            Ok(())
                        }
                    },
                );
            }));
            assert!(r.is_err(), "property should have failed");
        };
        let mut first = Vec::new();
        run_failing(&mut first);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("# Seeds for failure cases"), "header written");
        let seeds = read_seeds(&path);
        assert_eq!(seeds.len(), 1, "exactly one persisted seed: {text}");
        // Replay: the persisted seed regenerates the same failing value
        // before any fresh cases run.
        let mut second = Vec::new();
        run_failing(&mut second);
        assert_eq!(second.len(), 1, "failed on the replayed corpus seed");
        assert_eq!(second[0], *first.last().unwrap());
        // And no duplicate corpus entry was appended.
        assert_eq!(read_seeds(&path).len(), 1);
    }

    #[test]
    fn panicking_bodies_are_caught_and_persisted() {
        let path = scratch("panic-capture.proptest-regressions");
        let _ = std::fs::remove_file(&path);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(&path, "panicky", &ProptestConfig::with_cases(5), |_rng| {
                let x: Option<u32> = None;
                let _ = x.unwrap(); // a plain panic, not a prop_assert
                Ok(())
            });
        }));
        let err = r.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("replayable seed"), "{msg}");
        assert_eq!(read_seeds(&path).len(), 1);
    }

    #[test]
    fn assume_runaway_is_bounded() {
        let path = scratch("assume-runaway.proptest-regressions");
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(&path, "rejector", &ProptestConfig::with_cases(10), |_rng| {
                Err(TestCaseError::Reject)
            });
        }));
        let err = r.unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("gave up"), "{msg}");
    }

    #[test]
    fn proptest_cases_env_overrides_config() {
        // Serialise around the env var: cargo may run tests in parallel.
        let path = scratch("cases-env.proptest-regressions");
        std::env::set_var("PROPTEST_CASES", "7");
        let mut n = 0u32;
        run(&path, "env_cases", &ProptestConfig::with_cases(500), |_rng| {
            n += 1;
            Ok(())
        });
        std::env::remove_var("PROPTEST_CASES");
        assert_eq!(n, 7);
    }
}
