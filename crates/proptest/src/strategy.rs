//! Input strategies: how a property test turns random bits into values.
//!
//! The trait is object-safe (no shrinking machinery) so `prop_oneof!` can
//! erase heterogeneous strategies into `Box<dyn Strategy<Value = T>>`.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of one type from a seeded RNG.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Produce one value. Must be a pure function of the RNG stream so a
    /// persisted case seed replays the identical inputs.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a pure function, mirroring the
    /// real crate's combinator of the same name.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                // Two's-complement span; correct for signed ranges too.
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Visit the endpoints much more often than uniform
                // sampling would: off-by-one bugs live there.
                match rng.next_u64() % 16 {
                    0 => self.start,
                    1 => self.end - 1,
                    _ => self.start.wrapping_add((rng.next_u64() % span) as $t),
                }
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy {:?}", self);
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy {:?}", self);
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a canonical "any value" strategy, used via [`any`].
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Weight the extremes: 0 and MAX expose overflow bugs.
                match rng.next_u64() % 32 {
                    0 => 0,
                    1 => <$t>::MAX,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )+};
}

int_arbitrary!(u8, u16, u32, u64, usize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// A uniform choice among boxed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Build from at least one option.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// Box a strategy for use in a [`Union`]; the macro calls this so type
/// inference unifies every arm on one value type.
pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// The strategy returned by [`vec`] (`prop::collection::vec`).
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

/// A `Vec` whose length is drawn from `size` and whose elements come from
/// `elem`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.start + 1 >= self.size.end {
            self.size.start
        } else {
            self.size.generate(rng)
        };
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_ranges_respect_bounds_and_hit_endpoints() {
        let mut rng = TestRng::new(7);
        let r = 10u64..20;
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..1000 {
            let v = r.generate(&mut rng);
            assert!(r.contains(&v), "{v} outside {r:?}");
            lo_hit |= v == 10;
            hi_hit |= v == 19;
        }
        assert!(lo_hit && hi_hit, "endpoints never generated");
    }

    #[test]
    fn signed_ranges_cover_negative_spans() {
        let mut rng = TestRng::new(3);
        let r = -50i64..-10;
        for _ in 0..500 {
            let v = r.generate(&mut rng);
            assert!(r.contains(&v), "{v} outside {r:?}");
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = TestRng::new(11);
        let r = -1e3f64..1e3;
        for _ in 0..500 {
            let v = r.generate(&mut rng);
            assert!((-1e3..1e3).contains(&v));
        }
    }

    #[test]
    fn vec_lengths_stay_inside_the_size_range() {
        let mut rng = TestRng::new(5);
        let s = vec(0u8..4, 1..30);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((1..30).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
    }

    #[test]
    fn union_eventually_picks_every_option() {
        let mut rng = TestRng::new(9);
        let u = Union::new(vec![boxed(Just(1u8)), boxed(Just(2u8)), boxed(Just(3u8))]);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn tuples_compose_strategies() {
        let mut rng = TestRng::new(1);
        let s = (0u64..10, -1.0f64..1.0, Just(true));
        for _ in 0..100 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 10);
            assert!((-1.0..1.0).contains(&b));
            assert!(c);
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let s = (0u64..1_000_000, -1e3f64..1e3);
        let a: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..50).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::new(42);
            (0..50).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
