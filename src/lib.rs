//! # pi2 — facade crate for the PI2 AQM reproduction
//!
//! Reproduction of De Schepper et al., *"PI2: A Linearized AQM for both
//! Classic and Scalable TCP"* (ACM CoNEXT 2016), as a Rust workspace.
//! This crate re-exports the workspace's public API under short module
//! names so examples and downstream users need a single dependency:
//!
//! * [`simcore`] — deterministic discrete-event engine;
//! * [`netsim`] — packet-level dumbbell simulator (packets, ECN, queue, link);
//! * [`transport`] — TCP machinery and congestion controls (Reno, Cubic,
//!   ECN-Cubic, DCTCP);
//! * [`aqm`] — the paper's contribution: PI2, plus PIE/PI/RED baselines and
//!   the coupled single-queue Classic/Scalable AQM;
//! * [`fluid`] — fluid model & Bode stability analysis (Appendix B);
//! * [`stats`] — CDFs, percentiles, utilization summaries;
//! * [`obs`] — metrics registry, event-loop profiler, flight-recorder ring;
//! * [`experiments`] — runnable scenarios reproducing each paper figure.
//!
//! ## Quickstart
//!
//! ```
//! use pi2::prelude::*;
//!
//! // 10 Mb/s bottleneck, 100 ms RTT, 5 Reno flows under a PI2 AQM.
//! let mut sim = Sim::new(
//!     SimConfig {
//!         queue: QueueConfig { rate_bps: 10_000_000, buffer_bytes: 60_000_000 },
//!         seed: 42,
//!         monitor: MonitorConfig::default(),
//!     },
//!     Box::new(Pi2::new(Pi2Config::default())),
//! );
//! for _ in 0..5 {
//!     sim.add_flow(
//!         PathConf::symmetric(Duration::from_millis(100)),
//!         "reno",
//!         Time::ZERO,
//!         |id| Box::new(TcpSource::new(id, CcKind::Reno, EcnSetting::NotEcn, TcpConfig::default())),
//!     );
//! }
//! sim.run_until(Time::from_secs(20));
//! assert!(sim.core.monitor.flow(FlowId(0)).dequeued_pkts > 0);
//! ```

pub use pi2_aqm as aqm;
pub use pi2_experiments as experiments;
pub use pi2_fluid as fluid;
pub use pi2_netsim as netsim;
pub use pi2_obs as obs;
pub use pi2_simcore as simcore;
pub use pi2_stats as stats;
pub use pi2_transport as transport;
pub use pi2_validate as validate;

/// One-stop import for examples and tests.
pub mod prelude {
    pub use pi2_aqm::{
        CoupledPi2, CoupledPi2Config, Pi, Pi2, Pi2Config, PiConfig, Pie, PieConfig, Red, RedConfig,
    };
    pub use pi2_netsim::{
        Action, Aqm, Decision, Ecn, FlowId, ImpairmentConf, LinkImpairments, MonitorConfig,
        Packet, PassAqm, PathConf, QueueConfig, Sim, SimConfig, SimCore, Source, UdpCbrSource,
    };
    pub use pi2_simcore::{Duration, Rng, Time};
    pub use pi2_transport::{CcKind, EcnSetting, TcpConfig, TcpSource};
}
