#!/usr/bin/env bash
# The offline tier-1 gate plus a microbench smoke run.
#
# Everything here must pass with NO network access: the workspace has
# zero registry dependencies (the randomized proptest suites are gated
# behind the off-by-default `proptests` feature precisely so this holds;
# see README "Tests").
#
# Usage: scripts/ci.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build"
cargo build --release

echo "== tier-1: tests"
cargo test -q

echo "== workspace tests (release: some tests simulate minutes of traffic)"
cargo test --workspace --release -q

echo "== bench smoke run (short sims; history to a scratch file)"
# PI2_BENCH_OUT keeps CI noise out of the repo's BENCH_pi2.json trajectory.
smoke_out="$(mktemp -t pi2_bench_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_out"' EXIT
PI2_SECS=2 PI2_BENCH_OUT="$smoke_out" \
    cargo run -q -p pi2-bench --release --bin bench_sim_throughput
PI2_BENCH_OUT="$smoke_out" \
    cargo run -q -p pi2-bench --release --bin bench_aqm_decision

echo "== traced smoke run: JSONL sink parses and matches the counting sink"
trace_out="$(mktemp -t pi2_trace_smoke.XXXXXX.jsonl)"
trace_log="$(mktemp -t pi2_trace_smoke.XXXXXX.log)"
trap 'rm -f "$smoke_out" "$trace_out" "$trace_log"' EXIT
cargo run -q -p pi2-bench --release --bin pi2sim -- \
    --aqm pi2 --rate 10M --flows 2xreno --secs 8 --warmup 2 \
    --trace-out "$trace_out" | tee "$trace_log"
# Non-empty, and pi2sim's own re-parse confirmed the per-flow totals.
test -s "$trace_out"
grep -q '^{"ev":' "$trace_out"
grep -q '"ev":"aqm"' "$trace_out"
grep -q 'trace verified:' "$trace_log"

echo "== grid determinism smoke: serial vs parallel must match bit-for-bit"
PI2_SECS=2 PI2_THREADS=1 cargo run -q -p pi2-bench --release --bin grid_all > /tmp/pi2_grid_serial.txt
PI2_SECS=2 PI2_THREADS=4 cargo run -q -p pi2-bench --release --bin grid_all > /tmp/pi2_grid_par.txt
diff /tmp/pi2_grid_serial.txt /tmp/pi2_grid_par.txt
rm -f /tmp/pi2_grid_serial.txt /tmp/pi2_grid_par.txt

echo "== ci.sh: all green"
