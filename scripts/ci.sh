#!/usr/bin/env bash
# The offline tier-1 gate plus a microbench smoke run.
#
# Everything here must pass with NO network access: the workspace has
# zero registry dependencies (the randomized proptest suites are gated
# behind the off-by-default `proptests` feature precisely so this holds;
# see README "Tests").
#
# Usage: scripts/ci.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build"
cargo build --release

echo "== tier-1: tests"
cargo test -q

echo "== workspace tests (release: some tests simulate minutes of traffic)"
cargo test --workspace --release -q

echo "== bench smoke run (short sims; history to a scratch file)"
# PI2_BENCH_OUT keeps CI noise out of the repo's BENCH_pi2.json
# trajectory by default. Opt in with PI2_BENCH_HISTORY=1 to append the
# smoke-run metrics (including the per-event-class profile numbers and
# the metrics_overhead_ratio) to the committed BENCH_pi2.json instead —
# useful when a commit should leave a perf data point behind.
smoke_out="$(mktemp -t pi2_bench_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_out"' EXIT
if [ "${PI2_BENCH_HISTORY:-0}" = "1" ]; then
    bench_out_env=()  # record into the repo's committed BENCH_pi2.json
else
    bench_out_env=(PI2_BENCH_OUT="$smoke_out")
fi
# PI2_OVERHEAD_GATE: bench_sim_throughput exits non-zero when the
# metrics-on run costs more per event than the documented tolerance
# (15%; see EXPERIMENTS.md "Metrics & profiling", PI2_OVERHEAD_TOL).
PI2_SECS=2 PI2_OVERHEAD_GATE=1 env "${bench_out_env[@]}" \
    cargo run -q -p pi2-bench --release --bin bench_sim_throughput
env "${bench_out_env[@]}" \
    cargo run -q -p pi2-bench --release --bin bench_aqm_decision

echo "== perf gate: fresh sim_throughput vs the committed trajectory"
# bench_compare diffs the smoke run above against the committed
# BENCH_pi2.json baseline (trailing-min of the last 5 runs) and, with
# PI2_PERF_GATE=1, fails on regressions. Two checks (see the binary's
# module docs): ns/event within PI2_PERF_TOL of baseline, and the
# PIE/PI2 per-event cost ratio inside [0.9, 2.0]. The default tolerance
# here is deliberately loose: this host's clock throttles bimodally and
# same-binary runs differ by up to ~6x (fast-mode ~60 ns/event vs
# throttled ~390 — measured with interleaved A/B runs of two commits'
# binaries, which track each other exactly), so a tight absolute gate
# would flake — the ratio check is the machine-mode-independent
# regression pin.
if [ "${PI2_BENCH_HISTORY:-0}" = "1" ]; then
    PI2_PERF_GATE=1 PI2_PERF_TOL="${PI2_PERF_TOL:-7.0}" \
        cargo run -q -p pi2-bench --release --bin bench_compare -- --bench sim_throughput
else
    PI2_PERF_GATE=1 PI2_PERF_TOL="${PI2_PERF_TOL:-7.0}" \
        cargo run -q -p pi2-bench --release --bin bench_compare -- \
        --bench sim_throughput --baseline BENCH_pi2.json --candidate "$smoke_out"
fi

echo "== traced+audited smoke run: JSONL sink parses, invariants hold"
trace_out="$(mktemp -t pi2_trace_smoke.XXXXXX.jsonl)"
trace_log="$(mktemp -t pi2_trace_smoke.XXXXXX.log)"
trap 'rm -f "$smoke_out" "$trace_out" "$trace_log"' EXIT
# --audit attaches the runtime invariant auditor even in this release
# build: conservation, clock monotonicity, probability bounds, and (for
# pi2) the squaring law are checked on every event, and any violation
# panics with the replay seed.
cargo run -q -p pi2-bench --release --bin pi2sim -- \
    --aqm pi2 --rate 10M --flows 2xreno --secs 8 --warmup 2 \
    --audit --trace-out "$trace_out" | tee "$trace_log"
# Non-empty, and pi2sim's own re-parse confirmed the per-flow totals.
test -s "$trace_out"
grep -q '^{"ev":' "$trace_out"
grep -q '"ev":"aqm"' "$trace_out"
grep -q 'trace verified:' "$trace_log"
grep -q 'audit: all invariants held' "$trace_log"

echo "== metrics+profile smoke run: snapshot parses, exposition lints"
metrics_json="$(mktemp -t pi2_metrics_smoke.XXXXXX.json)"
metrics_prom="$(mktemp -t pi2_metrics_smoke.XXXXXX.prom)"
profile_log="$(mktemp -t pi2_profile_smoke.XXXXXX.log)"
trap 'rm -f "$smoke_out" "$trace_out" "$trace_log" "$metrics_json" "$metrics_prom" "$profile_log"' EXIT
cargo run -q -p pi2-bench --release --bin pi2sim -- \
    --aqm pi2 --rate 10M --flows 2xreno --secs 5 --warmup 1 \
    --profile --metrics-out "$metrics_json" | tee "$profile_log"
grep -q '# event-loop profile' "$profile_log"
grep -q 'metrics snapshot:' "$profile_log"
cargo run -q -p pi2-bench --release --bin pi2sim -- \
    --aqm pi2 --rate 10M --flows 2xreno --secs 5 --warmup 1 \
    --metrics-out "$metrics_prom" --metrics-format prom > /dev/null
# metrics_lint re-parses the JSON snapshot (schema + histogram summary
# fields) and runs the Prometheus exposition lint (no duplicate
# HELP/TYPE, valid names, label escaping).
cargo run -q -p pi2-bench --release --bin metrics_lint -- \
    "$metrics_json" "$metrics_prom"

echo "== lint gates fail loudly: bad inputs must exit non-zero"
# The gates above only work because set -e sees a non-zero exit; audit
# that directly (not by grepping output) with deliberately broken
# inputs. A bad file must fail the run even when a good file follows it.
lint_dir="$(mktemp -d -t pi2_lint_gate.XXXXXX)"
trap 'rm -rf "$smoke_out" "$trace_out" "$trace_log" "$metrics_json" "$metrics_prom" "$profile_log" "$lint_dir"' EXIT
printf '{' > "$lint_dir/truncated.json"
if cargo run -q -p pi2-bench --release --bin metrics_lint -- \
    "$lint_dir/truncated.json" "$metrics_json" > /dev/null 2>&1; then
    echo "FAIL: metrics_lint accepted a truncated snapshot" >&2
    exit 1
fi
if cargo run -q -p pi2-bench --release --bin perfetto_lint -- \
    "$lint_dir/truncated.json" > /dev/null 2>&1; then
    echo "FAIL: perfetto_lint accepted a truncated timeline" >&2
    exit 1
fi
rm -rf "$lint_dir"

echo "== grid determinism smoke: serial vs parallel must match bit-for-bit"
PI2_SECS=2 PI2_THREADS=1 cargo run -q -p pi2-bench --release --bin grid_all > /tmp/pi2_grid_serial.txt
PI2_SECS=2 PI2_THREADS=4 cargo run -q -p pi2-bench --release --bin grid_all > /tmp/pi2_grid_par.txt
diff /tmp/pi2_grid_serial.txt /tmp/pi2_grid_par.txt
rm -f /tmp/pi2_grid_serial.txt /tmp/pi2_grid_par.txt

echo "== checkpoint round-trip smoke: save at t/2, restore, diff vs straight-through"
# The restore⇄replay determinism oracle (tests/checkpoint.rs) in CLI
# form: a run snapshotted at 4 s and restored into a fresh process must
# finish with byte-identical metrics JSON to the run that never stopped.
# The audited restore leg also re-verifies every invariant from the
# restored state onward.
ckpt_dir="$(mktemp -d -t pi2_ckpt_smoke.XXXXXX)"
trap 'rm -rf "$smoke_out" "$trace_out" "$trace_log" "$metrics_json" "$metrics_prom" "$profile_log" "$ckpt_dir"' EXIT
ckpt_args=(--aqm pi2 --rate 10M --flows 2xreno,1xdctcp --secs 8 --warmup 2 --seed 7 --audit)
cargo run -q -p pi2-bench --release --bin pi2sim -- \
    "${ckpt_args[@]}" --metrics-out "$ckpt_dir/straight.json" > /dev/null
cargo run -q -p pi2-bench --release --bin pi2sim -- \
    "${ckpt_args[@]}" --checkpoint-out "$ckpt_dir/mid.ckpt" --checkpoint-at 4s \
    --metrics-out "$ckpt_dir/saver.json" > /dev/null
test -s "$ckpt_dir/mid.ckpt"
# Saving mid-run must not perturb the saving run itself...
diff "$ckpt_dir/straight.json" "$ckpt_dir/saver.json"
# ...and the restored run must land on the identical end state.
cargo run -q -p pi2-bench --release --bin pi2sim -- \
    "${ckpt_args[@]}" --restore "$ckpt_dir/mid.ckpt" \
    --metrics-out "$ckpt_dir/restored.json" > "$ckpt_dir/restore.log"
grep -q '^# restored' "$ckpt_dir/restore.log"
diff "$ckpt_dir/straight.json" "$ckpt_dir/restored.json"
rm -rf "$ckpt_dir"

echo "== dynamics scenario smoke: step-response table, weather determinism"
# The full {rate-step, flow-churn} x {PIE, PI2, DualPI2} family under a
# seeded weather layer (1% loss, 2 ms reordering jitter). The impaired
# sweep must be bit-identical — table and JSONL trace — for any
# PI2_THREADS, like every other sweep.
dyn_dir="$(mktemp -d -t pi2_dynamics_smoke.XXXXXX)"
trap 'rm -rf "$smoke_out" "$trace_out" "$trace_log" "$metrics_json" "$metrics_prom" "$profile_log" "$dyn_dir"' EXIT
for t in 1 2 4; do
    # The "trace written to <path>" confirmation embeds the per-thread
    # path; drop it so the table diff compares only scenario output.
    PI2_THREADS="$t" cargo run -q -p pi2-bench --release --bin pi2sim -- \
        --scenario dynamics --seed 4 --loss 1% --jitter 2ms \
        --trace-out "$dyn_dir/trace_$t.jsonl" \
        | grep -v '^dynamics trace:' > "$dyn_dir/table_$t.txt"
done
grep -q 'disturbance' "$dyn_dir/table_1.txt"
grep -q 'rate-step' "$dyn_dir/table_1.txt"
grep -q 'lost' "$dyn_dir/table_1.txt"           # weather column populated
grep -q '"scenario":"dynamics"' "$dyn_dir/trace_1.jsonl"
test "$(wc -l < "$dyn_dir/trace_1.jsonl")" -eq 6  # 2 disturbances x 3 AQMs
diff "$dyn_dir/table_1.txt" "$dyn_dir/table_2.txt"
diff "$dyn_dir/table_1.txt" "$dyn_dir/table_4.txt"
diff "$dyn_dir/trace_1.jsonl" "$dyn_dir/trace_2.jsonl"
diff "$dyn_dir/trace_1.jsonl" "$dyn_dir/trace_4.jsonl"
rm -rf "$dyn_dir"

echo "== topology scenario smoke: multi-hop FCT/fairness, thread determinism"
# The {3-hop parking lot, access-core} x {PI2, DualPI2} family with
# heavy-tailed mice: per-hop Jain fairness, per-class throughput and
# mice FCT percentiles must be bit-identical — table and JSONL trace —
# for any PI2_THREADS. The t=1 arm runs with --audit so the invariant
# auditor (including per-hop packet conservation) is active on the same
# cells the other arms must match, proving audit purity in passing.
topo_dir="$(mktemp -d -t pi2_topology_smoke.XXXXXX)"
trap 'rm -rf "$smoke_out" "$trace_out" "$trace_log" "$metrics_json" "$metrics_prom" "$profile_log" "$topo_dir"' EXIT
for t in 1 2 4; do
    if [ "$t" = 1 ]; then audit_arg=(--audit); else audit_arg=(); fi
    # The "trace written to <path>" confirmation embeds the per-thread
    # path; drop it so the table diff compares only scenario output. The
    # header line embeds audit=on/off, so drop it too — the point is
    # that the *measurements* agree across thread counts and audit.
    PI2_THREADS="$t" cargo run -q -p pi2-bench --release --bin pi2sim -- \
        --scenario topology --seed 9 "${audit_arg[@]}" \
        --trace-out "$topo_dir/trace_$t.jsonl" \
        | grep -v '^topology trace:' | grep -v '^# pi2sim:' > "$topo_dir/table_$t.txt"
done
grep -q 'parking-lot-3' "$topo_dir/table_1.txt"
grep -q 'access-core-2' "$topo_dir/table_1.txt"
grep -q 'hop 2:' "$topo_dir/table_1.txt"         # per-hop rows present
grep -q '"scenario":"topology"' "$topo_dir/trace_1.jsonl"
test "$(wc -l < "$topo_dir/trace_1.jsonl")" -eq 4  # 2 topologies x 2 AQMs
diff "$topo_dir/table_1.txt" "$topo_dir/table_2.txt"
diff "$topo_dir/table_1.txt" "$topo_dir/table_4.txt"
diff "$topo_dir/trace_1.jsonl" "$topo_dir/trace_2.jsonl"
diff "$topo_dir/trace_1.jsonl" "$topo_dir/trace_4.jsonl"
rm -rf "$topo_dir"

bin="$PWD/target/release"

echo "== live ops smoke: served dynamics sweep, perfetto export, bit-identity"
# A dynamics sweep behind --serve must be scrapeable over HTTP
# (obs_get is the workspace's std-TcpStream client — no curl in the CI
# image) and byte-identical to the unserved run; the representative
# cell's Perfetto timeline must validate and match across the two runs.
# PI2_SERVE_HOLD keeps the final snapshots alive until GET /quit so the
# end-of-run scrapes are race-free.
live_dir="$(mktemp -d -t pi2_live_smoke.XXXXXX)"
trap 'rm -rf "$smoke_out" "$trace_out" "$trace_log" "$metrics_json" "$metrics_prom" "$profile_log" "$live_dir"' EXIT
"$bin/pi2sim" --scenario dynamics --seed 4 \
    --trace-out "$live_dir/ref.perfetto.json" --trace-format perfetto \
    > "$live_dir/ref.stdout" 2> /dev/null
PI2_SERVE_HOLD=1 "$bin/pi2sim" --scenario dynamics --seed 4 \
    --trace-out "$live_dir/srv.perfetto.json" --trace-format perfetto \
    --serve 127.0.0.1:0 \
    > "$live_dir/srv.stdout" 2> "$live_dir/srv.stderr" &
srv_pid=$!
addr=""
for _ in $(seq 1 200); do
    addr="$(sed -n 's|^# pi2sim: serving http://\([0-9.:]*\)/.*|\1|p' "$live_dir/srv.stderr")"
    [ -n "$addr" ] && break
    sleep 0.1
done
test -n "$addr"
"$bin/obs_get" "$addr" /healthz > /dev/null
for _ in $(seq 1 600); do
    grep -q 'holding for GET /quit' "$live_dir/srv.stderr" && break
    sleep 0.1
done
grep -q 'holding for GET /quit' "$live_dir/srv.stderr"
"$bin/obs_get" "$addr" /progress > "$live_dir/progress.json"
"$bin/obs_get" "$addr" /metrics > "$live_dir/scraped.prom"
grep -q '"scenario":"dynamics"' "$live_dir/progress.json"
grep -q '"fraction":1' "$live_dir/progress.json"
"$bin/metrics_lint" "$live_dir/scraped.prom"
"$bin/obs_get" "$addr" /quit > /dev/null
wait "$srv_pid"
# Serving is pure observation: stdout identical once the trace-path
# confirmation (it embeds the per-run temp path) is dropped, and the
# exported timelines are byte-equal.
diff <(grep -v '^dynamics perfetto trace:' "$live_dir/ref.stdout") \
     <(grep -v '^dynamics perfetto trace:' "$live_dir/srv.stdout")
cmp "$live_dir/ref.perfetto.json" "$live_dir/srv.perfetto.json"
# The topology family exports a valid timeline too; structurally
# validate both (monotonic per-track timestamps, drop/mark instants).
"$bin/pi2sim" --scenario topology --seed 9 \
    --trace-out "$live_dir/topo.perfetto.json" --trace-format perfetto \
    > /dev/null 2> /dev/null
"$bin/perfetto_lint" "$live_dir/ref.perfetto.json" "$live_dir/topo.perfetto.json"
rm -rf "$live_dir"

echo "== served cancel/resume audit: /cancel checkpoints, exit 130, restore matches"
# Graceful cancel end-to-end: a served single run cancelled over HTTP
# must exit 130 leaving an auto-checkpoint (default pi2sim-cancel.ckpt
# in the working directory — run from the scratch dir), and restoring it
# must land on the exact metrics of the run that was never cancelled.
cxl_dir="$(mktemp -d -t pi2_cancel_smoke.XXXXXX)"
trap 'rm -rf "$smoke_out" "$trace_out" "$trace_log" "$metrics_json" "$metrics_prom" "$profile_log" "$cxl_dir"' EXIT
# 3 sim-hours ≈ a few wall-seconds: long enough that the /cancel issued
# right after bind always lands mid-run (it typically hits t ≈ 2 sim-min,
# ~1% in), short enough to keep the straight and resumed legs cheap.
cxl_args=(--aqm pi2 --rate 10M --flows 2xreno,1xdctcp --secs 10800 --warmup 2 --seed 7)
"$bin/pi2sim" "${cxl_args[@]}" --metrics-out "$cxl_dir/straight.json" \
    > "$cxl_dir/straight.stdout"
( cd "$cxl_dir" && exec "$bin/pi2sim" "${cxl_args[@]}" --serve 127.0.0.1:0 \
    > served.stdout 2> served.stderr ) &
run_pid=$!
addr=""
for _ in $(seq 1 200); do
    addr="$(sed -n 's|^# pi2sim: serving http://\([0-9.:]*\)/.*|\1|p' "$cxl_dir/served.stderr" 2>/dev/null)"
    [ -n "$addr" ] && break
    sleep 0.05
done
test -n "$addr"
"$bin/obs_get" "$addr" /cancel > /dev/null
rc=0; wait "$run_pid" || rc=$?
test "$rc" -eq 130
grep -q 'cancelled at t=' "$cxl_dir/served.stderr"
test -s "$cxl_dir/pi2sim-cancel.ckpt"
"$bin/pi2sim" "${cxl_args[@]}" --restore "$cxl_dir/pi2sim-cancel.ckpt" \
    --metrics-out "$cxl_dir/resumed.json" > "$cxl_dir/resumed.stdout" 2> /dev/null
grep -q '^# restored' "$cxl_dir/resumed.stdout"
diff "$cxl_dir/straight.json" "$cxl_dir/resumed.json"
rm -rf "$cxl_dir"

echo "== differential validation: packet sim vs fluid model (6 configs)"
# Gates CI: validate_grid exits non-zero if any metric leaves its
# documented tolerance band (see crates/validate/src/differential.rs).
cargo run -q -p pi2-bench --release --bin validate_grid > /dev/null

echo "== hybrid/fluid backend smoke: conformance, CLI sweep, 100k-flow fluid run"
# The backend conformance suite (tests/hybrid.rs): the paper's scenario
# grid under packet, fluid and hybrid, judged against the shared
# pi2_validate::bands() table, plus the zero-background identity and
# seed-determinism oracles. The binaries are already built by the
# workspace test stage, so this re-run is seconds — it keeps the stage
# self-contained when invoked piecemeal.
cargo test -q --release --test hybrid
hyb_dir="$(mktemp -d -t pi2_hybrid_smoke.XXXXXX)"
trap 'rm -rf "$smoke_out" "$trace_out" "$trace_log" "$metrics_json" "$metrics_prom" "$profile_log" "$hyb_dir"' EXIT
# Small hybrid sweep over the CLI: 2 packet foreground flows riding on an
# 8-flow fluid background; the summary must report the aggregate served.
"$bin/pi2sim" --aqm pi2 --rate 10M --flows 2xreno --secs 8 --warmup 2 \
    --seed 7 --backend hybrid --bg-flows 8xreno > "$hyb_dir/hybrid.txt"
grep -q '^background: 8 fluid flows' "$hyb_dir/hybrid.txt"
# Time-boxed 100k-flow fluid run: a population 100x beyond the packet
# backend's practical reach must finish within a 60 s wall budget (it
# takes milliseconds — the engine's cost is per class, not per flow).
timeout 60 "$bin/pi2sim" --backend fluid --aqm pi2 --rate 10G \
    --flows 100000xreno --secs 20 --warmup 5 --seed 7 > "$hyb_dir/fluid.txt"
grep -q '^# pi2sim: backend=fluid' "$hyb_dir/fluid.txt"
grep -q '^flows: 100000 across' "$hyb_dir/fluid.txt"
# Backend scaling bench: gates the headline claim (fluid at 100k flows
# beats packet at 1k) and records the "hybrid" trajectory entry in the
# committed BENCH_pi2.json when PI2_BENCH_HISTORY=1.
env "${bench_out_env[@]}" \
    cargo run -q -p pi2-bench --release --bin hybrid_bench
rm -rf "$hyb_dir"

echo "== randomized proptests (vendored shim; time-boxed via PROPTEST_CASES)"
# Each case can simulate minutes of traffic, so CI clamps the case count;
# nightly / local runs can raise it (PROPTEST_CASES=32 scripts/ci.sh).
for p in pi2-aqm pi2-experiments pi2-fluid pi2-netsim pi2-simcore \
         pi2-stats pi2-transport pi2-validate; do
    PROPTEST_CASES="${PROPTEST_CASES:-2}" \
        cargo test -q -p "$p" --release --features proptests --test proptests
done

echo "== ci.sh: all green"
