#!/usr/bin/env bash
# Re-bless the golden trace after an INTENTIONAL behavior change.
#
# The golden test (`tests/trace_streaming.rs::golden_trace_for_small_scenario`)
# pins a tiny seeded scenario's JSONL trace byte for byte. When a change
# legitimately moves the trace (new event field, AQM retune), run this
# script: it saves the old golden, regenerates under PI2_BLESS=1, prints
# the diff for review, and refuses to commit anything itself — inspect
# the diff, then `git add` the new golden deliberately.
#
# Usage: scripts/refresh_golden.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

golden="tests/golden/trace_small.jsonl"
if [[ ! -f "$golden" ]]; then
    echo "refresh_golden: no $golden yet; creating it fresh" >&2
    PI2_BLESS=1 cargo test -q --test trace_streaming golden
    echo "refresh_golden: wrote $(wc -l < "$golden") lines to $golden"
    exit 0
fi

old="$(mktemp -t pi2_golden_old.XXXXXX.jsonl)"
trap 'rm -f "$old"' EXIT
cp "$golden" "$old"

PI2_BLESS=1 cargo test -q --test trace_streaming golden

if diff -q "$old" "$golden" > /dev/null; then
    echo "refresh_golden: golden unchanged ($(wc -l < "$golden") lines)"
    exit 0
fi

echo "refresh_golden: golden CHANGED — review before committing:"
echo "--------------------------------------------------------------"
diff -u "$old" "$golden" | head -80 || true
n_changed=$(diff "$old" "$golden" | grep -c '^[<>]' || true)
echo "--------------------------------------------------------------"
echo "refresh_golden: $n_changed changed lines (diff truncated at 80);"
echo "if this matches the intended behavior change: git add $golden"
