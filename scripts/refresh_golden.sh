#!/usr/bin/env bash
# Re-bless the golden traces after an INTENTIONAL behavior change.
#
# The golden tests (`tests/trace_streaming.rs::golden_trace_for_small_scenario`,
# `::golden_trace_for_impaired_scenario` and
# `::golden_trace_for_parking_lot_scenario`) pin a tiny seeded scenario's
# JSONL trace byte for byte — on a clean single-hop path, under the
# seeded fault-injection weather layer, and on a 3-hop parking-lot chain
# (hop-0 event stream plus per-hop flow-byte rows). When a change
# legitimately moves a
# trace (new event field, AQM retune, impairment draw-order change), run
# this script: it saves the old goldens, regenerates under PI2_BLESS=1,
# prints the diffs for review, and refuses to commit anything itself —
# inspect the diffs, then `git add` the new goldens deliberately.
#
# Usage: scripts/refresh_golden.sh   (from anywhere; cd's to the repo root)

set -euo pipefail
cd "$(dirname "$0")/.."

goldens=(
    tests/golden/trace_small.jsonl
    tests/golden/trace_small_impaired.jsonl
    tests/golden/trace_parking_lot.jsonl
)

tmpdir="$(mktemp -d -t pi2_golden_old.XXXXXX)"
trap 'rm -rf "$tmpdir"' EXIT
fresh=()
for golden in "${goldens[@]}"; do
    if [[ -f "$golden" ]]; then
        cp "$golden" "$tmpdir/$(basename "$golden")"
    else
        echo "refresh_golden: no $golden yet; creating it fresh" >&2
        fresh+=("$golden")
    fi
done

PI2_BLESS=1 cargo test -q --test trace_streaming golden

changed=0
for golden in "${goldens[@]}"; do
    old="$tmpdir/$(basename "$golden")"
    if [[ ! -f "$old" ]]; then
        echo "refresh_golden: wrote $(wc -l < "$golden") lines to $golden (new)"
        continue
    fi
    if diff -q "$old" "$golden" > /dev/null; then
        echo "refresh_golden: $golden unchanged ($(wc -l < "$golden") lines)"
        continue
    fi
    changed=1
    echo "refresh_golden: $golden CHANGED — review before committing:"
    echo "--------------------------------------------------------------"
    diff -u "$old" "$golden" | head -80 || true
    n_changed=$(diff "$old" "$golden" | grep -c '^[<>]' || true)
    echo "--------------------------------------------------------------"
    echo "refresh_golden: $n_changed changed lines (diff truncated at 80)"
done

if [[ "$changed" = 1 ]]; then
    echo "refresh_golden: if this matches the intended behavior change:"
    echo "  git add ${goldens[*]}"
fi
