//! A latency-sensitive application sharing the bottleneck with bulk TCP —
//! the motivating scenario of the paper's introduction.
//!
//! A 1 Mb/s CBR "video call" shares a 10 Mb/s link with four Cubic
//! uploads. The call's packets ride the same queue, so its end-to-end
//! latency is base RTT + whatever queue the AQM tolerates. We compare
//! tail-drop (bufferbloat), RED, PIE and PI2 on the call's per-packet
//! delay distribution.
//!
//! ```text
//! cargo run --release --example videocall
//! ```

use pi2::aqm::{Codel, CodelConfig, PieConfig, RedConfig};
use pi2::prelude::*;

fn run(aqm: Box<dyn Aqm>, name: &'static str) {
    let rate = 10_000_000;
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: rate,
                // A sensible home-router buffer (200 pkts) so tail-drop
                // bloat is visible but bounded.
                buffer_bytes: 200 * 1500,
            },
            seed: 99,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(10),
                ..MonitorConfig::default()
            },
        },
        aqm,
    );
    let rtt = Duration::from_millis(30);
    // The call: 1 Mb/s of 500 B packets (≈ 250 pps).
    sim.add_flow(PathConf::symmetric(rtt), "call", Time::ZERO, |id| {
        Box::new(UdpCbrSource::new(id, 1_000_000, 500, Ecn::NotEct))
    });
    // Four competing Cubic uploads.
    for _ in 0..4 {
        sim.add_flow(PathConf::symmetric(rtt), "bulk", Time::ZERO, |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Cubic,
                EcnSetting::NotEcn,
                TcpConfig::default(),
            ))
        });
    }
    sim.run_until(Time::from_secs(60));
    let m = &sim.core.monitor;
    let sojourns: Vec<f64> = m.sojourn_ms.iter().map(|&x| x as f64).collect();
    let call = m.flow(FlowId(0));
    let loss_pct = 100.0
        * (call.sent_pkts - call.dequeued_pkts) as f64
        / call.sent_pkts.max(1) as f64;
    println!(
        "{:<9} queue delay mean {:>6.1} ms  p99 {:>6.1} ms | call loss {:>5.2} % | bulk {:>5.2} Mb/s",
        name,
        pi2::stats::mean(&sojourns),
        pi2::stats::percentile(&sojourns, 0.99),
        loss_pct,
        m.pooled_mean_tput_mbps("bulk"),
    );
}

fn main() {
    println!("1 Mb/s video call + 4 Cubic uploads on a 10 Mb/s link (RTT 30 ms)\n");
    run(Box::new(PassAqm), "taildrop");
    run(
        Box::new(Red::new(RedConfig::for_link(
            10_000_000,
            Duration::from_millis(10),
            Duration::from_millis(50),
        ))),
        "red",
    );
    run(Box::new(Codel::new(CodelConfig::default())), "codel");
    run(Box::new(Pie::new(PieConfig::paper_default())), "pie");
    run(Box::new(Pi2::new(Pi2Config::default())), "pi2");
    println!(
        "\nTail-drop fills the whole buffer (~240 ms of bloat); the AQMs hold the\n\
         shared queue near their targets, giving the call a usable latency while\n\
         the uploads keep nearly all their throughput."
    );
}
