//! "Data Centre to the Home" — the paper's destination, demonstrated.
//!
//! A home link carries a mix the single queue cannot serve well: bulk
//! Cubic downloads, a DCTCP-style low-latency app (cloud gaming / remote
//! desktop), and a video call. Compare the paper's single-queue coupled
//! AQM (Scalable traffic shares the 20 ms Classic queue) against the
//! DualPI2 extension (Scalable traffic gets its own sub-millisecond
//! queue), at equal throughputs.
//!
//! ```text
//! cargo run --release --example l4s_home
//! ```

use pi2::aqm::{DualPi2, DualPi2Config};
use pi2::netsim::Qdisc;
use pi2::prelude::*;
use pi2::stats::Summary;

struct Outcome {
    name: &'static str,
    game_delay: Summary,
    bulk_delay: Summary,
    game_mbps: f64,
    bulk_mbps: f64,
    call_p99: f64,
}

fn scenario(sim: &mut Sim) {
    let rtt = Duration::from_millis(20);
    // Two bulk Cubic downloads.
    for _ in 0..2 {
        sim.add_flow(PathConf::symmetric(rtt), "bulk", Time::ZERO, |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Cubic,
                EcnSetting::NotEcn,
                TcpConfig::default(),
            ))
        });
    }
    // The low-latency app: a DCTCP (Scalable/L4S) flow.
    sim.add_flow(PathConf::symmetric(rtt), "game", Time::ZERO, |id| {
        Box::new(TcpSource::new(
            id,
            CcKind::Dctcp,
            EcnSetting::Scalable,
            TcpConfig::default(),
        ))
    });
    // A 1 Mb/s video call (unresponsive, Not-ECT -> Classic queue).
    sim.add_flow(PathConf::symmetric(rtt), "call", Time::ZERO, |id| {
        Box::new(UdpCbrSource::new(id, 1_000_000, 500, Ecn::NotEct))
    });
}

fn monitor_cfg() -> MonitorConfig {
    MonitorConfig {
        warmup: Duration::from_secs(15),
        record_flow_sojourns: true,
        ..MonitorConfig::default()
    }
}

fn harvest(sim: &Sim, name: &'static str) -> Outcome {
    let m = &sim.core.monitor;
    Outcome {
        name,
        game_delay: Summary::of_f32(&m.pooled_sojourns("game")),
        bulk_delay: Summary::of_f32(&m.pooled_sojourns("bulk")),
        game_mbps: m.pooled_mean_tput_mbps("game"),
        bulk_mbps: m.pooled_mean_tput_mbps("bulk"),
        call_p99: Summary::of_f32(&m.pooled_sojourns("call")).p99,
    }
}

fn main() {
    let rate = 50_000_000;
    println!("home link: 50 Mb/s, 20 ms RTT; 2 Cubic bulk + 1 DCTCP app + 1 video call\n");

    // Single-queue coupled PI2 (the paper's interim arrangement).
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: rate,
                buffer_bytes: 40_000 * 1500,
            },
            seed: 7,
            monitor: monitor_cfg(),
        },
        Box::new(CoupledPi2::new(CoupledPi2Config::default())),
    );
    scenario(&mut sim);
    sim.run_until(Time::from_secs(60));
    let single = harvest(&sim, "coupled single-queue");

    // DualPI2 (the paper's recommended destination).
    let mut sim = Sim::with_qdisc(
        SimConfig {
            seed: 7,
            monitor: monitor_cfg(),
            ..SimConfig::default()
        },
        Box::new(DualPi2::new(DualPi2Config::for_link(rate))) as Box<dyn Qdisc>,
    );
    scenario(&mut sim);
    sim.run_until(Time::from_secs(60));
    let dual = harvest(&sim, "DualPI2 two-queue");

    println!(
        "{:<22} {:>14} {:>14} {:>10} {:>10} {:>12}",
        "qdisc", "app p50/p99 ms", "bulk p50/p99", "app Mb/s", "bulk Mb/s", "call p99 ms"
    );
    for o in [&single, &dual] {
        println!(
            "{:<22} {:>6.2} /{:>6.2} {:>6.1} /{:>6.1} {:>10.1} {:>10.1} {:>12.1}",
            o.name,
            o.game_delay.p50,
            o.game_delay.p99,
            o.bulk_delay.p50,
            o.bulk_delay.p99,
            o.game_mbps,
            o.bulk_mbps,
            o.call_p99,
        );
    }
    println!(
        "\nIn the single queue the low-latency app stands in the same 20 ms line as\n\
         the downloads. The DualQ gives it its own sub-millisecond queue while the\n\
         Classic traffic keeps its usual service — same link, same flows, ~20x\n\
         less latency for the app that cares. (The video call is Not-ECT, so it\n\
         stays in the Classic queue; marking it ECT(1) would move it to the fast\n\
         lane — the L4S deployment incentive in one line of config.)"
    );
}
