//! Quickstart: one PI2 AQM, five Reno flows, 10 Mb/s — watch the queue
//! settle at the 20 ms target while utilization stays high.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pi2::prelude::*;

fn main() {
    // A 10 Mb/s bottleneck with the paper's Table 1 buffer, guarded by a
    // PI2 AQM at its defaults (target 20 ms, alpha = 5/16, beta = 50/16).
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 10_000_000,
                buffer_bytes: 40_000 * 1500,
            },
            seed: 42,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(10),
                ..MonitorConfig::default()
            },
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );

    // Five long-running Reno flows over a 100 ms path.
    for _ in 0..5 {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(100)),
            "reno",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            },
        );
    }

    sim.run_until(Time::from_secs(60));

    let m = &sim.core.monitor;
    println!("t[s]  queue delay [ms]   total throughput [Mb/s]");
    for ((t, d), (_, r)) in m.qdelay_series().iter().zip(&m.total_tput_series()) {
        if *t as u64 % 5 == 0 {
            println!("{t:>4.0}  {d:>16.1}   {r:>22.2}");
        }
    }

    let sojourns: Vec<f64> = m.sojourn_ms.iter().map(|&x| x as f64).collect();
    println!();
    println!(
        "per-packet queue delay: mean {:.1} ms, p99 {:.1} ms (target 20 ms)",
        pi2::stats::mean(&sojourns),
        pi2::stats::percentile(&sojourns, 0.99),
    );
    let tput = m.pooled_mean_tput_mbps("reno");
    println!("aggregate goodput: {tput:.2} Mb/s of 10 Mb/s");
    let f = m.flow(FlowId(0));
    println!(
        "flow 0: sent {} pkts, {} dropped by the AQM ({:.2} %)",
        f.sent_pkts,
        f.dropped,
        100.0 * f.signal_fraction()
    );
}
