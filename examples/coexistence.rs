//! Coexistence demo — the paper's headline result.
//!
//! One Cubic flow and one DCTCP flow share a 40 Mb/s bottleneck. Under
//! PIE, DCTCP's aggressive response starves Cubic (~10×). Under the
//! coupled PI2 AQM, marking DCTCP with `p'` and dropping Cubic with
//! `(p'/2)²` rebalances them to ≈ equal rates.
//!
//! ```text
//! cargo run --release --example coexistence
//! ```

use pi2::prelude::*;

struct Outcome {
    aqm: &'static str,
    cubic_mbps: f64,
    dctcp_mbps: f64,
    qdelay_ms: f64,
    cubic_signal_pct: f64,
    dctcp_signal_pct: f64,
}

fn run(aqm: Box<dyn Aqm>, name: &'static str) -> Outcome {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 40_000_000,
                buffer_bytes: 40_000 * 1500,
            },
            seed: 5,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(15),
                ..MonitorConfig::default()
            },
        },
        aqm,
    );
    let rtt = Duration::from_millis(10);
    sim.add_flow(PathConf::symmetric(rtt), "cubic", Time::ZERO, |id| {
        Box::new(TcpSource::new(
            id,
            CcKind::Cubic,
            EcnSetting::NotEcn,
            TcpConfig::default(),
        ))
    });
    sim.add_flow(PathConf::symmetric(rtt), "dctcp", Time::ZERO, |id| {
        Box::new(TcpSource::new(
            id,
            CcKind::Dctcp,
            EcnSetting::Scalable,
            TcpConfig::default(),
        ))
    });
    sim.run_until(Time::from_secs(60));
    let m = &sim.core.monitor;
    let sojourns: Vec<f64> = m.sojourn_ms.iter().map(|&x| x as f64).collect();
    Outcome {
        aqm: name,
        cubic_mbps: m.pooled_mean_tput_mbps("cubic"),
        dctcp_mbps: m.pooled_mean_tput_mbps("dctcp"),
        qdelay_ms: pi2::stats::mean(&sojourns),
        cubic_signal_pct: 100.0 * m.flows[0].signal_fraction(),
        dctcp_signal_pct: 100.0 * m.flows[1].signal_fraction(),
    }
}

fn main() {
    println!("one Cubic vs one DCTCP flow, 40 Mb/s, RTT 10 ms, 60 s\n");
    let outcomes = [
        run(
            Box::new(Pie::new(pi2::aqm::PieConfig::paper_default())),
            "PIE",
        ),
        run(
            Box::new(CoupledPi2::new(CoupledPi2Config::default())),
            "coupled PI2 (k=2)",
        ),
    ];
    println!(
        "{:<18} {:>11} {:>11} {:>12} {:>12} {:>12} {:>12}",
        "AQM", "cubic Mb/s", "dctcp Mb/s", "ratio c/d", "qdelay ms", "cubic sig %", "dctcp sig %"
    );
    for o in &outcomes {
        println!(
            "{:<18} {:>11.2} {:>11.2} {:>12.3} {:>12.1} {:>12.3} {:>12.2}",
            o.aqm,
            o.cubic_mbps,
            o.dctcp_mbps,
            o.cubic_mbps / o.dctcp_mbps,
            o.qdelay_ms,
            o.cubic_signal_pct,
            o.dctcp_signal_pct
        );
    }
    println!(
        "\nPIE applies the same probability to both flows, so DCTCP (window 2/p)\n\
         crushes Cubic (window 1.68/sqrt(p)). The coupled AQM counterbalances the\n\
         aggression: DCTCP sees the much stronger signal ps while Cubic sees only\n\
         (ps/2)^2, and the rates meet in the middle."
    );
}
