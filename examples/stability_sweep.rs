//! Stability analysis demo: Appendix B's Bode margins and a fluid-model
//! step response, side by side.
//!
//! Sweeps the operating point and prints the gain/phase margins of the
//! three loops of Figure 7, then integrates the nonlinear fluid model
//! through a load step to show what the margins mean in the time domain.
//!
//! ```text
//! cargo run --release --example stability_sweep
//! ```

use pi2::fluid::{
    margins, FluidConfig, FluidControllerKind, FluidSim, FluidTcpKind, LoopTf, PiGains,
};

fn main() {
    println!("== Bode margins at R0 = 100 ms (Appendix B / Figure 7) ==\n");
    println!(
        "{:>8} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "p' [%]", "pie GM", "pie PM", "pi2 GM", "pi2 PM", "scal GM", "scal PM"
    );
    for i in 0..13 {
        let pp = 10f64.powf(-3.0 + 3.0 * i as f64 / 12.0);
        let pie = margins(&LoopTf::pie_auto(pp * pp, 0.1));
        let pi2 = margins(&LoopTf::pi2(pp, 0.1));
        let scal = margins(&LoopTf::scal_pi(pp, 0.1));
        println!(
            "{:>8.3} | {:>8.1} {:>8.0} | {:>8.1} {:>8.0} | {:>8.1} {:>8.0}",
            pp * 100.0,
            pie.gain_margin_db,
            pie.phase_margin_deg,
            pi2.gain_margin_db,
            pi2.phase_margin_deg,
            scal.gain_margin_db,
            scal.phase_margin_deg,
        );
    }

    println!("\n== fluid-model step response: 5 -> 30 Reno flows at t = 30 s ==\n");
    let base = FluidConfig {
        n_flows: vec![(0.0, 5.0), (30.0, 30.0)],
        ..FluidConfig::default()
    };
    for (name, encoder, gains) in [
        ("pi (fixed gains)", FluidControllerKind::Direct, PiGains::pie()),
        ("pie (tuned)", FluidControllerKind::TunedDirect, PiGains::pie()),
        ("pi2 (squared)", FluidControllerKind::Squared, PiGains::pi2()),
    ] {
        let cfg = FluidConfig {
            tcp: FluidTcpKind::Reno,
            encoder,
            gains,
            ..base.clone()
        };
        let samples = FluidSim::new(cfg).run(60.0, 0.25);
        let peak = samples
            .iter()
            .filter(|s| s.t > 30.0)
            .map(|s| s.qdelay * 1000.0)
            .fold(0.0, f64::max);
        let settle = samples
            .iter()
            .filter(|s| s.t > 50.0)
            .map(|s| s.qdelay * 1000.0)
            .collect::<Vec<_>>();
        let mean = settle.iter().sum::<f64>() / settle.len() as f64;
        let trace: Vec<String> = samples
            .iter()
            .filter(|s| s.t > 28.0 && s.t < 40.0)
            .step_by(4)
            .map(|s| format!("{:.0}", s.qdelay * 1000.0))
            .collect();
        println!(
            "{name:<18} step peak {peak:>5.1} ms, settles at {mean:>4.1} ms | trace: {}",
            trace.join(" ")
        );
    }
    println!(
        "\nThe flatter PI2 margins buy a faster, better-damped return to target\n\
         after the load step — the time-domain meaning of Figure 7."
    );
}
