//! Smoke tests for every figure runner: scaled-down versions of each
//! experiment must execute and produce structurally sane data, so the
//! bench-binary code paths stay green under `cargo test` even though the
//! binaries themselves run at full scale.

use pi2::experiments::scenario::AqmKind;
use pi2::simcore::Duration;

#[test]
fn fig06_13_runner_smoke() {
    use pi2::experiments::fig06::{run_one, IntensityConfig};
    let cfg = IntensityConfig {
        phase: Duration::from_secs(4),
        ..IntensityConfig::fig13()
    };
    let run = run_one(AqmKind::pi2_default(), &cfg);
    assert_eq!(run.aqm, "pi2");
    assert!(run.qdelay.len() >= 18, "{} samples", run.qdelay.len());
    assert!(run.delay.n > 0);
    assert!(run.steady_phase_std_ms.is_finite());
}

#[test]
fn fig11_runner_smoke() {
    use pi2::experiments::fig11::{run_one, TrafficMix};
    for mix in TrafficMix::all() {
        let run = run_one(AqmKind::pie_default(), mix, 99);
        assert_eq!(run.mix, mix);
        assert!(run.peak_ms > 0.0);
        assert!(!run.tput.is_empty());
        assert!(run.util.mean > 50.0, "{} util {:.0}", mix.label(), run.util.mean);
    }
}

#[test]
fn fig14_runner_smoke() {
    use pi2::experiments::fig14::run_one;
    let run = run_one(false, 5, false, 3);
    assert_eq!(run.aqm, "pi2");
    assert_eq!(run.target_ms, 5);
    assert!(run.cdf.len() > 1000);
    // The CDF must actually be a distribution over positive delays.
    assert!(run.cdf.quantile(0.5) > 0.0);
    assert!(run.cdf.quantile(0.99) >= run.cdf.quantile(0.5));
}

#[test]
fn grid_runner_smoke() {
    use pi2::experiments::grid::{run_cell, Pair};
    let cell = run_cell(AqmKind::coupled_default(), Pair::CubicVsEcnCubic, 12, 20, 12, 4);
    assert_eq!(cell.link_mbps, 12);
    assert_eq!(cell.rtt_ms, 20);
    assert!(cell.rate_ratio.is_finite() && cell.rate_ratio > 0.0);
    assert!(cell.tputs.0 + cell.tputs.1 > 8.0, "total {:?}", cell.tputs);
    assert!(cell.util.mean > 70.0);
}

#[test]
fn fig19_runner_smoke() {
    use pi2::experiments::fig19::run_combo;
    use pi2::experiments::grid::Pair;
    let r = run_combo(AqmKind::coupled_default(), Pair::CubicVsDctcp, 3, 7, 12, 4);
    assert_eq!(r.a, 3);
    assert_eq!(r.b, 7);
    assert_eq!(r.norm_a.len(), 3);
    assert_eq!(r.norm_b.len(), 7);
    assert!(r.ratio.unwrap() > 0.0);
    // Edge combos: no ratio when one side is empty.
    let edge = run_combo(AqmKind::coupled_default(), Pair::CubicVsDctcp, 0, 10, 12, 4);
    assert!(edge.ratio.is_none());
    assert!(edge.norm_a.is_empty());
}

#[test]
fn shortflows_runner_smoke() {
    use pi2::experiments::shortflows::{run_one, WebWorkload};
    let w = WebWorkload {
        duration: pi2::simcore::Time::from_secs(25),
        ..WebWorkload::light()
    };
    let r = run_one(AqmKind::pie_default(), &w);
    assert!(r.launched > 20);
    assert!(r.completed > 0);
    assert!(r.short_fct.p50 > 0.0);
}

#[test]
fn overload_runner_smoke() {
    use pi2::experiments::overload::run_point;
    let pt = run_point(AqmKind::pie_default(), 1.5, 5);
    assert!(pt.udp_prob_pct > 1.0, "prob {:.1}%", pt.udp_prob_pct);
    assert!(pt.aqm_loss + pt.overflow_loss > 0.05);
}

#[test]
fn dualq_runner_smoke() {
    use pi2::experiments::dualq::run;
    let r = run(12_000_000, Duration::from_millis(20), 1, 1, 15, 8);
    assert!(r.cubic_mbps > 0.5);
    assert!(r.dctcp_mbps > 0.5);
    assert!(r.l_delay.n > 0 && r.c_delay.n > 0);
}

#[test]
fn isolation_runner_smoke() {
    use pi2::experiments::isolation::{run_coupled, run_fq};
    let a = run_fq(12_000_000, Duration::from_millis(20), 15, 8);
    let b = run_coupled(12_000_000, Duration::from_millis(20), 15, 8);
    assert_eq!(a.scheme, "fq-drr");
    assert_eq!(b.scheme, "coupled-pi2");
    assert!(a.ratio.is_finite() && b.ratio.is_finite());
}

#[test]
fn rttfair_runner_smoke() {
    use pi2::experiments::rttfair::run_one;
    let r = run_one(AqmKind::pi2_default(), 20, 15, 8);
    assert!(r.short_mbps > 0.0 && r.long_mbps > 0.0);
    assert!(r.ratio > 1.0, "short-RTT flow should lead: {:.2}", r.ratio);
}

#[test]
fn appendix_a_runner_smoke() {
    use pi2::experiments::appendix_a::measure;
    use pi2::transport::{CcKind, EcnSetting};
    let pt = measure(CcKind::Reno, EcnSetting::NotEcn, 0.05, 9);
    assert_eq!(pt.cc, "reno");
    assert!(pt.measured_w > 1.0);
    assert!(pt.rel_err < 1.0);
}

#[test]
fn dynamics_runner_smoke() {
    use pi2::experiments::dynamics::{render_table, run_one, Disturbance};
    use pi2::netsim::{ImpairmentConf, LinkImpairments};
    // DualPI2 under churn with light weather: the one family cell the
    // repo-level dynamics tests don't already cover end to end.
    let w = LinkImpairments::new(9).symmetric(ImpairmentConf {
        loss: 0.005,
        dup: 0.0,
        jitter: Duration::from_millis(1),
    });
    let r = run_one(
        AqmKind::dualq_default(40_000_000),
        Disturbance::FlowChurn,
        Some(w),
        9,
    );
    assert_eq!(r.aqm, "dualpi2");
    assert!(!r.qdelay.is_empty());
    assert!(r.spike_ms >= 0.0 && r.revert_spike_ms >= 0.0);
    let s = r.impair.expect("weather accounting attached");
    assert!(s.fwd_offered > 0 && s.fwd_lost > 0, "{s:?}");
    let t = render_table(std::slice::from_ref(&r));
    assert!(t.contains("flow-churn") && t.contains("dualpi2"), "{t}");
    assert!(t.contains("lost"), "weather column missing: {t}");
}

#[test]
fn ablation_runners_smoke() {
    use pi2::experiments::ablation::{gain_sweep, k_sweep, square_mode};
    let ks = k_sweep(&[2.0], 10);
    assert_eq!(ks.len(), 1);
    assert!(ks[0].ratio > 0.0);
    let gs = gain_sweep(&[2.5], 10);
    assert!(gs[0].peak_ms > 0.0);
    let (a, b) = square_mode(10);
    assert!(a.n > 0 && b.n > 0);
}
