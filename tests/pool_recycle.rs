//! Slab-pool recycling under adversarial packet fates.
//!
//! Packets and ACKs live in slab pools ([`pi2::netsim`]'s `Pool`) and
//! events carry 4-byte handles. The pools only stay allocation-free if
//! every handle is resolved exactly once — on delivery, on drop, on
//! loss in transit, and on each injected duplicate. These tests drive
//! the paths where a slot could leak (AQM drops, buffer overflow, path
//! loss, duplication, reordering jitter) and assert the recycling
//! invariants:
//!
//! * `capacity() == high_water()` — a fresh slot is only ever created
//!   when the free list is empty, so total slots never exceed the peak
//!   of simultaneously live payloads (slots recycle, they don't leak);
//! * occupancy is bounded by what can physically be in flight, and does
//!   not creep over time (a leaked handle would ratchet `in_use` up).

use pi2::prelude::*;

fn build(
    rate_bps: u64,
    buffer_bytes: usize,
    flows: usize,
    imp: Option<LinkImpairments>,
) -> Sim {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps,
                buffer_bytes,
            },
            seed: 11,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    if let Some(imp) = imp {
        sim.core.set_impairments(imp);
    }
    for _ in 0..flows {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "reno",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            },
        );
    }
    sim
}

/// Every slot ever created was created because the free list was empty:
/// recycling means the pool never grows past its own high-water mark.
fn assert_recycled(sim: &Sim) {
    let p = &sim.core.packets;
    assert_eq!(
        p.capacity(),
        p.high_water(),
        "packet pool grew past its peak occupancy (leaked handles?)"
    );
    assert!(p.in_use() <= p.high_water());
    let a = &sim.core.acks;
    assert_eq!(
        a.capacity(),
        a.high_water(),
        "ack pool grew past its peak occupancy (leaked handles?)"
    );
    assert!(a.in_use() <= a.high_water());
}

/// AQM drop path: PI2 at a congested bottleneck drops steadily; each
/// dropped packet's slot must return to the free list.
#[test]
fn aqm_drops_recycle_packet_slots() {
    let mut sim = build(10_000_000, 40_000 * 1500, 5, None);
    sim.run_until(Time::from_secs(10));
    let dropped = sim.core.counters.totals().dropped;
    assert!(dropped > 0, "scenario produced no AQM drops");
    assert_recycled(&sim);
}

/// Buffer-overflow drop path: a tiny buffer forces tail drops in the
/// queue itself, a different discard site from the AQM decision.
#[test]
fn buffer_overflow_drops_recycle_packet_slots() {
    let mut sim = build(5_000_000, 30_000, 5, None);
    sim.run_until(Time::from_secs(10));
    assert!(
        sim.core.counters.totals().dropped > 0,
        "tiny buffer produced no overflow drops"
    );
    assert_recycled(&sim);
}

/// Impaired path: loss (handle resolved without delivery), duplication
/// (an extra slot per copy, each resolved independently) and jitter
/// (reordered resolution) in both directions.
#[test]
fn impaired_path_recycles_packet_and_ack_slots() {
    let weather = LinkImpairments::new(0xBAD_CAFE).symmetric(ImpairmentConf {
        loss: 0.02,
        dup: 0.05,
        jitter: Duration::from_millis(15),
    });
    let mut sim = build(20_000_000, 40_000 * 1500, 8, Some(weather));
    sim.run_until(Time::from_secs(15));
    let stats = sim
        .core
        .impairments()
        .expect("impairment layer attached")
        .stats();
    assert!(stats.fwd_lost > 0 && stats.fwd_dup > 0, "weather inert: {stats:?}");
    assert!(stats.rev_lost > 0 && stats.rev_dup > 0, "weather inert: {stats:?}");
    assert_recycled(&sim);
    // Occupancy stays bounded by what fits in flight: queue + both
    // propagation legs. A leak would push occupancy far beyond it.
    let bdp_pkts = 2 * (20_000_000 / 8 * 40 / 1000) / 1500 + 40_000;
    assert!(
        (sim.core.packets.high_water() as u64) < bdp_pkts,
        "packet occupancy {} implausible for pipe capacity",
        sim.core.packets.high_water()
    );
}

/// No creep: peak occupancy is essentially reached during slow-start
/// overshoot and recycling keeps it flat afterwards. A stochastic burst
/// may nudge the peak by a slot or two later on, but a leak — even one
/// slot per thousand packets — would ratchet it by hundreds over the
/// extra 15 simulated seconds (~120k packets) measured here.
#[test]
fn pool_occupancy_does_not_creep() {
    let weather = LinkImpairments::new(0x5EED).symmetric(ImpairmentConf {
        loss: 0.01,
        dup: 0.02,
        jitter: Duration::from_millis(5),
    });
    let mut sim = build(20_000_000, 40_000 * 1500, 8, Some(weather));
    sim.run_until(Time::from_secs(5));
    let (pkt_early, ack_early) = (
        sim.core.packets.high_water(),
        sim.core.acks.high_water(),
    );
    sim.run_until(Time::from_secs(20));
    let (pkt_late, ack_late) = (
        sim.core.packets.high_water(),
        sim.core.acks.high_water(),
    );
    assert!(
        pkt_late <= pkt_early + 8,
        "packet pool peak crept {pkt_early} -> {pkt_late} after warm-up"
    );
    assert!(
        ack_late <= ack_early + 8,
        "ack pool peak crept {ack_early} -> {ack_late} after warm-up"
    );
    assert_recycled(&sim);
}
