//! Multi-hop conformance suite: the paper's coexistence claims must
//! survive leaving the dumbbell. A parking-lot chain of three
//! bottlenecks under heavy-tailed mice cross-traffic is held against a
//! single-hop baseline with the same long-flow population, and the
//! DualPI2 per-class throughput ratio is pinned to the Section 6
//! coexistence window the single-queue grid already enforces.
//!
//! Every multi-hop run here attaches the invariant auditor, so per-hop
//! packet conservation is re-proven on each cell as a side effect.

use pi2::experiments::scenario::{AqmKind, FlowGroup, Scenario};
use pi2::experiments::topology::{run_one, TopologyKind};
use pi2::prelude::*;
use pi2::stats::jain_fairness;

/// The single-hop baseline: the parking lot's long-flow population
/// (2 Cubic + 2 DCTCP at 40 ms) on one 20 Mb/s dumbbell, same AQM.
fn single_hop_baseline(aqm: AqmKind, seed: u64) -> (f64, f64) {
    let mut sc = Scenario::new(aqm, 20_000_000);
    let rtt = Duration::from_millis(40);
    sc.tcp.push(FlowGroup::new(
        2,
        CcKind::Cubic,
        EcnSetting::NotEcn,
        "classic",
        rtt,
    ));
    sc.tcp.push(FlowGroup::new(
        2,
        CcKind::Dctcp,
        EcnSetting::Scalable,
        "scalable",
        rtt,
    ));
    sc.duration = Time::from_secs(60);
    sc.warmup = Duration::from_secs(10);
    sc.seed = seed;
    let r = sc.run();
    let per_flow: Vec<f64> = r
        .monitor
        .flows
        .iter()
        .map(|f| f.dequeued_bytes as f64)
        .collect();
    let c = r.per_flow_tput_mbps("classic");
    let s = r.per_flow_tput_mbps("scalable");
    (jain_fairness(&per_flow), c / s)
}

/// Parking-lot fairness under DualPI2 stays close to the single-hop
/// dumbbell baseline: chaining three identical bottlenecks must not
/// break the dual-queue coupling's per-class balance.
#[test]
fn parking_lot_fairness_matches_the_single_hop_baseline() {
    let aqm = AqmKind::dualq_default(20_000_000);
    let (base_jain, base_ratio) = single_hop_baseline(aqm.clone(), 11);
    let r = run_one(TopologyKind::ParkingLot3, aqm, 11, true);
    // Every hop carries all four long flows; its fairness must not fall
    // more than 0.15 below the dumbbell's.
    for h in &r.hops {
        assert!(
            h.fairness > base_jain - 0.15,
            "hop {}: jain {:.3} vs single-hop {:.3}",
            h.hop,
            h.fairness,
            base_jain
        );
    }
    // And the end-to-end per-class ratio stays in the same regime as the
    // baseline's (both inside the coexistence window, below).
    assert!(
        r.rate_ratio > 0.4 * base_ratio && r.rate_ratio < 2.5 * base_ratio,
        "multi-hop ratio {:.2} drifted from single-hop {:.2}",
        r.rate_ratio,
        base_ratio
    );
}

/// The Section 6 coexistence window under a 90 %-mice workload: with
/// heavy-tailed short flows crossing every hop, DualPI2 still holds the
/// Cubic/DCTCP per-class throughput ratio inside the paper's window,
/// while the single-queue PI2 (Classic-squared probability, no dual
/// queue) lets DCTCP starve Cubic — same contrast the single-hop grid
/// shows.
#[test]
fn mice_heavy_coexistence_holds_the_window_under_dualpi2() {
    let dualq = run_one(
        TopologyKind::ParkingLot3,
        AqmKind::dualq_default(20_000_000),
        11,
        true,
    );
    // The workload really is mice-dominated: 4 long flows vs hundreds of
    // short ones.
    let total_flows = dualq.mice_launched + 4;
    assert!(
        dualq.mice_launched as f64 > 0.9 * total_flows as f64,
        "{} mice of {} flows",
        dualq.mice_launched,
        total_flows
    );
    assert!(
        (0.4..2.5).contains(&dualq.rate_ratio),
        "DualPI2 Cubic/DCTCP ratio {:.2} outside the Sec. 6 window",
        dualq.rate_ratio
    );
    // Contrast: the same cell under single-queue PI2 leaves the window
    // on the starvation side and is less fair at every hop.
    let pi2 = run_one(TopologyKind::ParkingLot3, AqmKind::pi2_default(), 11, true);
    assert!(
        pi2.rate_ratio < 0.4,
        "single-queue PI2 should let DCTCP dominate, ratio {:.2}",
        pi2.rate_ratio
    );
    for (d, p) in dualq.hops.iter().zip(pi2.hops.iter()) {
        assert!(
            d.fairness > p.fairness,
            "hop {}: dualpi2 jain {:.3} not above pi2 {:.3}",
            d.hop,
            d.fairness,
            p.fairness
        );
    }
}

/// Mice FCT percentiles are well-formed and the tail reflects the
/// heavy-tailed size distribution: P99 must sit well above P50.
#[test]
fn mice_fct_percentiles_are_ordered_and_heavy_tailed() {
    let r = run_one(
        TopologyKind::AccessCore2,
        AqmKind::dualq_default(20_000_000),
        5,
        true,
    );
    let (p50, p95, p99) = r.fct_ms;
    assert!(p50 > 0.0 && p50 <= p95 && p95 <= p99, "{:?}", r.fct_ms);
    assert!(
        p99 > 2.0 * p50,
        "bounded-Pareto sizes should spread the tail: p50 {p50:.1} ms p99 {p99:.1} ms"
    );
    assert!(
        r.mice_completed as f64 > 0.9 * r.mice_launched as f64,
        "only {}/{} mice completed",
        r.mice_completed,
        r.mice_launched
    );
}
