//! Integration tests for the extension systems, exercised through the
//! public facade exactly as a downstream user would.

use pi2::aqm::{Codel, CodelConfig, CurvyRed, CurvyRedConfig, DualPi2, DualPi2Config, FqConfig, FqDrr};
use pi2::netsim::Qdisc;
use pi2::prelude::*;

fn tcp_flow(cc: CcKind, ecn: EcnSetting) -> impl Fn(FlowId) -> Box<dyn Source> {
    move |id| Box::new(TcpSource::new(id, cc, ecn, TcpConfig::default()))
}

/// DualPI2 through `Sim::with_qdisc`: the whole "Data Centre to the Home"
/// pitch in one assertion set.
#[test]
fn dualq_delivers_low_latency_without_throughput_loss() {
    let mut sim = Sim::with_qdisc(
        SimConfig {
            seed: 3,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(10),
                record_flow_sojourns: true,
                ..MonitorConfig::default()
            },
            ..SimConfig::default()
        },
        Box::new(DualPi2::new(DualPi2Config::for_link(40_000_000))) as Box<dyn Qdisc>,
    );
    let rtt = Duration::from_millis(10);
    sim.add_flow(PathConf::symmetric(rtt), "cubic", Time::ZERO, tcp_flow(CcKind::Cubic, EcnSetting::NotEcn));
    sim.add_flow(PathConf::symmetric(rtt), "dctcp", Time::ZERO, tcp_flow(CcKind::Dctcp, EcnSetting::Scalable));
    sim.run_until(Time::from_secs(40));
    let m = &sim.core.monitor;
    let l: Vec<f64> = m.pooled_sojourns("dctcp").iter().map(|&x| x as f64).collect();
    let c: Vec<f64> = m.pooled_sojourns("cubic").iter().map(|&x| x as f64).collect();
    let l_mean = pi2::stats::mean(&l);
    let c_mean = pi2::stats::mean(&c);
    assert!(l_mean < 2.0, "L-queue mean {l_mean:.2} ms");
    assert!((10.0..35.0).contains(&c_mean), "C-queue mean {c_mean:.2} ms");
    let total = m.pooled_mean_tput_mbps("cubic") + m.pooled_mean_tput_mbps("dctcp");
    assert!(total > 36.0, "total {total:.1} Mb/s of 40");
}

/// FQ-DRR as a qdisc: n identical flows each get ~1/n of the link.
#[test]
fn fq_shares_equally_across_identical_flows() {
    let mut sim = Sim::with_qdisc(
        SimConfig {
            seed: 5,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(10),
                ..MonitorConfig::default()
            },
            ..SimConfig::default()
        },
        Box::new(FqDrr::new(FqConfig::for_link(30_000_000))) as Box<dyn Qdisc>,
    );
    for i in 0..3 {
        let label = ["a", "b", "c"][i];
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            label,
            Time::ZERO,
            tcp_flow(CcKind::Cubic, EcnSetting::NotEcn),
        );
    }
    sim.run_until(Time::from_secs(40));
    let m = &sim.core.monitor;
    let rates: Vec<f64> = ["a", "b", "c"]
        .iter()
        .map(|l| m.pooled_mean_tput_mbps(l))
        .collect();
    let jain = pi2::stats::jain_fairness(&rates);
    assert!(jain > 0.95, "Jain index {jain:.3} for {rates:?}");
}

/// CoDel and Curvy RED both control a mixed workload without collapse.
#[test]
fn alternative_aqms_remain_stable_on_mixed_traffic() {
    for (name, aqm) in [
        (
            "codel",
            Box::new(Codel::new(CodelConfig::default())) as Box<dyn Aqm>,
        ),
        (
            "curvy",
            Box::new(CurvyRed::new(CurvyRedConfig::default())) as Box<dyn Aqm>,
        ),
    ] {
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps: 10_000_000,
                    buffer_bytes: 40_000 * 1500,
                },
                seed: 6,
                monitor: MonitorConfig {
                    warmup: Duration::from_secs(10),
                    ..MonitorConfig::default()
                },
            },
            aqm,
        );
        let rtt = Duration::from_millis(40);
        for _ in 0..4 {
            sim.add_flow(
                PathConf::symmetric(rtt),
                "tcp",
                Time::ZERO,
                tcp_flow(CcKind::Reno, EcnSetting::NotEcn),
            );
        }
        sim.add_flow(PathConf::symmetric(rtt), "udp", Time::ZERO, |id| {
            Box::new(UdpCbrSource::new(id, 2_000_000, 1500, Ecn::NotEct))
        });
        sim.run_until(Time::from_secs(40));
        let m = &sim.core.monitor;
        let s: Vec<f64> = m.sojourn_ms.iter().map(|&x| x as f64).collect();
        let mean = pi2::stats::mean(&s);
        assert!(
            (0.5..80.0).contains(&mean),
            "{name}: mean delay {mean:.1} ms"
        );
        let util_samples = m.util_samples();
        let util: f64 = util_samples.iter().map(|&x| x as f64).sum::<f64>()
            / util_samples.len() as f64;
        assert!(util > 0.85, "{name}: utilization {util:.2}");
    }
}

/// Per-packet tracing: every dequeued packet was admitted first, and the
/// rendered trace is line-per-event.
#[test]
fn trace_records_coherent_packet_lifecycles() {
    use pi2::netsim::{MemorySink, TraceEvent};
    use std::cell::RefCell;
    use std::rc::Rc;
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 10_000_000,
                buffer_bytes: 40_000 * 1500,
            },
            seed: 9,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    let handle = Rc::new(RefCell::new(MemorySink::new(10_000)));
    sim.core.add_trace_sink(Box::new(Rc::clone(&handle)));
    sim.add_flow(
        PathConf::symmetric(Duration::from_millis(20)),
        "f",
        Time::ZERO,
        tcp_flow(CcKind::Reno, EcnSetting::NotEcn),
    );
    sim.run_until(Time::from_secs(5));
    let trace = handle.borrow();
    assert!(!trace.events().is_empty());
    // Timestamps are non-decreasing and every dequeue has a prior enqueue
    // of the same (flow, seq).
    let mut enqueued = std::collections::HashSet::new();
    let mut last = Time::ZERO;
    for ev in trace.events() {
        assert!(ev.time() >= last);
        last = ev.time();
        match *ev {
            TraceEvent::Enqueue { flow, seq, .. } => {
                enqueued.insert((flow, seq));
            }
            TraceEvent::Dequeue { flow, seq, .. } => {
                assert!(
                    enqueued.contains(&(flow, seq)),
                    "dequeue of never-enqueued f{}#{seq}",
                    flow.0
                );
            }
            _ => {}
        }
    }
    let text = trace.render();
    assert_eq!(text.lines().count(), trace.events().len());
    assert!(text.contains("ENQ"));
    assert!(text.contains("DEQ"));
}

/// The CLI parser round-trips a realistic command line (library-level —
/// the binary itself is exercised manually / in CI).
#[test]
fn pi2sim_cli_parses_realistic_lines() {
    use pi2_bench::cli::{parse_args, parse_flows};
    let argv: Vec<String> = "--aqm dualq --rate 100M --rtt 5ms --flows 2xcubic,2xdctcp --secs 45 --warmup 15 --csv"
        .split_whitespace()
        .map(|s| s.to_string())
        .collect();
    let a = parse_args(&argv).expect("parse");
    assert_eq!(a.aqm, "dualq");
    assert_eq!(a.rate_bps, 100_000_000);
    assert!(a.csv);
    assert_eq!(parse_flows("10xscalable").unwrap()[0].count, 10);
}
