//! Streaming-telemetry integration tests: sinks are pure observers (a
//! traced run is bit-identical to an untraced one), every sink sees the
//! same stream, and a small seeded scenario matches its checked-in golden
//! trace byte for byte.

use pi2::netsim::{CountingSink, JsonlSink, MemorySink, TraceEvent};
use pi2::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

fn build_sim(seed: u64) -> Sim {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 10_000_000,
                buffer_bytes: 40_000 * 1500,
            },
            seed,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    for _ in 0..2 {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "reno",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            },
        );
    }
    sim
}

/// Attaching sinks must not change the simulation: sinks never touch the
/// RNG or the event queue, so a traced run and an untraced run of the
/// same seed are the same run.
#[test]
fn sinks_do_not_perturb_the_simulation() {
    let mut plain = build_sim(3);
    plain.run_until(Time::from_secs(5));

    let mut traced = build_sim(3);
    traced
        .core
        .add_trace_sink(Box::new(MemorySink::unbounded()));
    traced.core.add_trace_sink(Box::new(CountingSink::default()));
    traced.run_until(Time::from_secs(5));

    assert_eq!(plain.core.events.popped(), traced.core.events.popped());
    assert_eq!(plain.core.counters, traced.core.counters);
    assert_eq!(plain.core.monitor.sojourn_ms, traced.core.monitor.sojourn_ms);
    for (a, b) in plain
        .core
        .monitor
        .flows
        .iter()
        .zip(&traced.core.monitor.flows)
    {
        assert_eq!(a.dequeued_bytes, b.dequeued_bytes);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.marked, b.marked);
    }
}

/// Every sink receives the identical stream: a JSONL sink writing to a
/// byte buffer must render exactly what a memory sink recorded.
#[test]
fn jsonl_sink_matches_memory_sink_stream() {
    let mut sim = build_sim(4);
    let jsonl = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    let mem = Rc::new(RefCell::new(MemorySink::unbounded()));
    sim.core.add_trace_sink(Box::new(Rc::clone(&jsonl)));
    sim.core.add_trace_sink(Box::new(Rc::clone(&mem)));
    sim.run_until(Time::from_secs(3));
    sim.core.flush_trace_sinks().expect("flush");
    drop(sim.core.take_trace_sinks());

    let jsonl = Rc::try_unwrap(jsonl).expect("sole owner").into_inner();
    let mem = Rc::try_unwrap(mem).expect("sole owner").into_inner();
    let text = String::from_utf8(jsonl.into_inner()).expect("utf8");

    // Split the written stream into event lines and AQM probe lines
    // (interleaved on disk, stored separately by the memory sink).
    let mut ev_lines = Vec::new();
    let mut aqm_lines = Vec::new();
    for line in text.lines() {
        if line.starts_with("{\"ev\":\"aqm\"") {
            aqm_lines.push(line);
        } else {
            ev_lines.push(line);
        }
    }
    assert_eq!(ev_lines.len(), mem.events().len());
    for (line, ev) in ev_lines.iter().zip(mem.events()) {
        assert_eq!(*line, ev.jsonl());
    }
    assert_eq!(aqm_lines.len(), mem.aqm_states().len());
    for (line, (t, st)) in aqm_lines.iter().zip(mem.aqm_states()) {
        assert_eq!(*line, pi2::netsim::trace::aqm_state_jsonl(*t, st));
    }
}

/// The in-memory trace agrees with the always-on counters and the
/// monitor, event by event.
#[test]
fn trace_counting_sink_and_monitor_agree() {
    let mut sim = build_sim(5);
    let mem = Rc::new(RefCell::new(MemorySink::unbounded()));
    sim.core.add_trace_sink(Box::new(Rc::clone(&mem)));
    sim.run_until(Time::from_secs(5));

    let mut marks = 0u64;
    let mut drops = 0u64;
    let mut enqs = 0u64;
    let mut deqs = 0u64;
    for ev in mem.borrow().events() {
        match ev {
            TraceEvent::Enqueue { .. } => enqs += 1,
            TraceEvent::Mark { .. } => marks += 1,
            TraceEvent::Drop { .. } => drops += 1,
            TraceEvent::Dequeue { .. } => deqs += 1,
        }
    }
    let t = sim.core.counters.totals();
    assert!(enqs > 0 && deqs > 0);
    assert_eq!(enqs, t.enqueued);
    assert_eq!(marks, t.marked);
    assert_eq!(drops, t.dropped);
    assert_eq!(deqs, t.dequeued);
    let m = &sim.core.monitor;
    assert_eq!(drops, m.flows.iter().map(|f| f.dropped).sum::<u64>());
    assert_eq!(marks, m.flows.iter().map(|f| f.marked).sum::<u64>());
    assert_eq!(deqs, m.flows.iter().map(|f| f.dequeued_pkts).sum::<u64>());
}

/// The invariant auditor is a pure observer too: an audited run is
/// bit-identical to an unaudited one. Audit state is controlled through
/// the explicit API (not the `PI2_AUDIT` env knob) so the test is
/// immune to the environment and to the debug-build default: the
/// "unaudited" arm detaches whatever `Sim::with_qdisc` attached.
#[test]
fn audit_does_not_perturb_the_simulation() {
    let mut plain = build_sim(3);
    drop(plain.core.take_audit());
    plain.run_until(Time::from_secs(5));

    let mut audited = build_sim(3);
    audited
        .core
        .enable_audit(pi2::netsim::AuditSink::new(3).expect_squared(0.25));
    audited.run_until(Time::from_secs(5));

    let audit = audited.core.audit().expect("auditor still attached");
    assert!(audit.events_seen() > 0, "auditor saw the event stream");
    assert!(audit.probes_seen() > 0, "auditor saw the AQM probes");

    assert_eq!(plain.core.events.popped(), audited.core.events.popped());
    assert_eq!(plain.core.counters, audited.core.counters);
    assert_eq!(plain.core.monitor.sojourn_ms, audited.core.monitor.sojourn_ms);
    for (a, b) in plain
        .core
        .monitor
        .flows
        .iter()
        .zip(&audited.core.monitor.flows)
    {
        assert_eq!(a.dequeued_bytes, b.dequeued_bytes);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.marked, b.marked);
    }
}

/// Auditing composes with tracing: the audited run's JSONL stream is
/// byte-identical to the unaudited run's (the auditor sees the same
/// stream the sinks do, and changes nothing).
#[test]
fn audited_trace_matches_unaudited_trace_byte_for_byte() {
    let run = |audit: bool| -> String {
        let mut sim = build_sim(6);
        if audit {
            sim.core.enable_audit(pi2::netsim::AuditSink::new(6));
        } else {
            drop(sim.core.take_audit());
        }
        let jsonl = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
        sim.core.add_trace_sink(Box::new(Rc::clone(&jsonl)));
        sim.run_until(Time::from_secs(3));
        sim.core.flush_trace_sinks().expect("flush");
        drop(sim.core.take_trace_sinks());
        String::from_utf8(
            Rc::try_unwrap(jsonl).expect("sole owner").into_inner().into_inner(),
        )
        .expect("utf8")
    };
    let unaudited = run(false);
    let audited = run(true);
    assert!(!unaudited.is_empty());
    assert_eq!(unaudited, audited);
}

/// Golden-file regression: a tiny seeded scenario's JSONL trace is stable
/// byte for byte. Regenerate with
/// `PI2_BLESS=1 cargo test --test trace_streaming golden` after an
/// intentional behavior change.
#[test]
fn golden_trace_for_small_scenario() {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 1_000_000,
                buffer_bytes: 20 * 1500,
            },
            seed: 11,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    let jsonl = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    sim.core.add_trace_sink(Box::new(Rc::clone(&jsonl)));
    sim.add_flow(
        PathConf::symmetric(Duration::from_millis(20)),
        "udp",
        Time::ZERO,
        |id| Box::new(pi2::netsim::UdpCbrSource::new(id, 1_500_000, 1500, Ecn::NotEct)),
    );
    sim.run_until(Time::from_millis(200));
    sim.core.flush_trace_sinks().expect("flush");
    drop(sim.core.take_trace_sinks());
    let got = String::from_utf8(
        Rc::try_unwrap(jsonl).expect("sole owner").into_inner().into_inner(),
    )
    .expect("utf8");
    assert!(!got.is_empty(), "scenario produced no events");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_small.jsonl");
    if std::env::var_os("PI2_BLESS").is_some() {
        std::fs::write(path, &got).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file (PI2_BLESS=1 to create)");
    assert_eq!(got, want, "trace diverged from golden file {path}");
}

/// Golden-file regression for the fault-injection layer: a tiny seeded
/// TCP scenario under a seeded weather layer (loss + duplication +
/// jitter) is stable byte for byte. TCP is closed-loop, so lost and
/// reordered packets change the ACK clock and the retransmission
/// pattern — the impaired trace genuinely diverges from a clean run,
/// and the golden pins the layer's draw order and its accounting (the
/// trailing `impair` line). Regenerate with
/// `PI2_BLESS=1 cargo test --test trace_streaming golden`.
#[test]
fn golden_trace_for_impaired_scenario() {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 1_000_000,
                buffer_bytes: 20 * 1500,
            },
            seed: 11,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    sim.core
        .set_impairments(LinkImpairments::new(0x7EA7).symmetric(ImpairmentConf {
            loss: 0.05,
            dup: 0.02,
            jitter: Duration::from_millis(1),
        }));
    let jsonl = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    sim.core.add_trace_sink(Box::new(Rc::clone(&jsonl)));
    sim.add_flow(
        PathConf::symmetric(Duration::from_millis(20)),
        "reno",
        Time::ZERO,
        |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Reno,
                EcnSetting::NotEcn,
                TcpConfig::default(),
            ))
        },
    );
    sim.run_until(Time::from_secs(1));
    sim.core.flush_trace_sinks().expect("flush");
    let s = sim.core.impairments().expect("weather attached").stats();
    assert!(
        s.fwd_lost > 0 && s.rev_lost > 0,
        "the golden must capture an actually-impaired run: {s:?}"
    );
    drop(sim.core.take_trace_sinks());
    let trace = String::from_utf8(
        Rc::try_unwrap(jsonl).expect("sole owner").into_inner().into_inner(),
    )
    .expect("utf8");
    assert!(!trace.is_empty(), "scenario produced no events");
    // Pin the layer's books alongside the event stream.
    let got = format!(
        "{trace}{{\"impair\":{{\"fwd_offered\":{},\"fwd_lost\":{},\"fwd_dup\":{},\
         \"rev_offered\":{},\"rev_lost\":{},\"rev_dup\":{}}}}}\n",
        s.fwd_offered, s.fwd_lost, s.fwd_dup, s.rev_offered, s.rev_lost, s.rev_dup
    );

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_small_impaired.jsonl"
    );
    if std::env::var_os("PI2_BLESS").is_some() {
        std::fs::write(path, &got).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file (PI2_BLESS=1 to create)");
    assert_eq!(got, want, "impaired trace diverged from golden file {path}");
}

/// Golden-file regression for a 3-hop parking-lot chain: an end-to-end
/// CBR flow crosses three bottlenecks while per-hop cross traffic loads
/// the later hops. The JSONL stream stays a hop-0 stream by design, so
/// the golden pins (a) that later hops never leak events into it and
/// (b) the per-hop, per-flow egress byte rows appended after the trace —
/// the multi-hop state itself. Regenerate with
/// `PI2_BLESS=1 cargo test --test trace_streaming golden`.
#[test]
fn golden_trace_for_parking_lot_scenario() {
    let fifo_hop = |rate_bps: u64| -> Box<dyn pi2::netsim::Qdisc> {
        Box::new(pi2::netsim::BottleneckQueue::new(
            QueueConfig {
                rate_bps,
                buffer_bytes: 20 * 1500,
            },
            Box::new(PassAqm),
        ))
    };
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 1_000_000,
                buffer_bytes: 20 * 1500,
            },
            seed: 11,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    let h1 = sim.add_hop(fifo_hop(1_000_000), Duration::from_millis(2));
    let h2 = sim.add_hop(fifo_hop(500_000), Duration::from_millis(2));
    let jsonl = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    sim.core.add_trace_sink(Box::new(Rc::clone(&jsonl)));
    let e2e = sim.add_flow(
        PathConf::symmetric(Duration::from_millis(20)),
        "e2e",
        Time::ZERO,
        |id| Box::new(pi2::netsim::UdpCbrSource::new(id, 600_000, 1000, Ecn::NotEct)),
    );
    sim.set_route(e2e, vec![0, h1, h2]);
    for hop in [h1, h2] {
        let cross = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "cross",
            Time::ZERO,
            |id| Box::new(pi2::netsim::UdpCbrSource::new(id, 200_000, 500, Ecn::NotEct)),
        );
        sim.set_route(cross, vec![hop]);
    }
    sim.run_until(Time::from_millis(300));
    sim.core.flush_trace_sinks().expect("flush");
    drop(sim.core.take_trace_sinks());
    let trace = String::from_utf8(
        Rc::try_unwrap(jsonl).expect("sole owner").into_inner().into_inner(),
    )
    .expect("utf8");
    assert!(!trace.is_empty(), "scenario produced no events");
    // The stream must stay hop-0-only: the cross flows (ids 1 and 2)
    // never touch the primary bottleneck, so they never appear in it.
    for line in trace.lines() {
        assert!(
            !line.contains("\"flow\":1") && !line.contains("\"flow\":2"),
            "later-hop traffic leaked into the hop-0 stream: {line}"
        );
    }
    // Pin the multi-hop state alongside the event stream.
    let rows: Vec<String> = (0..sim.core.hop_count() as u32)
        .map(|h| {
            let row: Vec<String> = sim
                .core
                .hop_flow_bytes(h)
                .iter()
                .map(|b| b.to_string())
                .collect();
            format!("[{}]", row.join(","))
        })
        .collect();
    let got = format!("{trace}{{\"hop_flow_bytes\":[{}]}}\n", rows.join(","));

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/trace_parking_lot.jsonl"
    );
    if std::env::var_os("PI2_BLESS").is_some() {
        std::fs::write(path, &got).expect("bless golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file (PI2_BLESS=1 to create)");
    assert_eq!(got, want, "parking-lot trace diverged from golden file {path}");
}

/// RFC 4180 regression: `csv_field` escaping survives a round trip
/// through a standards-compliant field splitter, and the CSV sink's
/// stream parses into exactly the header's column count on every line.
#[test]
fn csv_escaping_round_trips_per_rfc4180() {
    use pi2::netsim::{csv_field, trace::CSV_HEADER, CsvSink};

    // A minimal RFC 4180 reader: split one record into its fields,
    // honouring quoted fields and doubled quotes.
    fn split(record: &str) -> Vec<String> {
        let mut fields = Vec::new();
        let mut cur = String::new();
        let mut quoted = false;
        let mut chars = record.chars().peekable();
        while let Some(c) = chars.next() {
            match (quoted, c) {
                (false, ',') => fields.push(std::mem::take(&mut cur)),
                (false, '"') if cur.is_empty() => quoted = true,
                (true, '"') => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        quoted = false;
                    }
                }
                (_, c) => cur.push(c),
            }
        }
        fields.push(cur);
        fields
    }

    for nasty in [
        "plain",
        "with,comma",
        "with \"quotes\"",
        "both,\"of\",them",
        "multi\nline",
        "cr\rhere",
    ] {
        let row = format!("{},{}", csv_field(nasty), csv_field("x"));
        assert_eq!(
            split(&row),
            vec![nasty.to_string(), "x".to_string()],
            "field {nasty:?} did not round-trip"
        );
    }

    // The streaming CSV sink's output stays a rectangular table.
    let mut sim = build_sim(7);
    let csv = Rc::new(RefCell::new(CsvSink::new(Vec::new())));
    sim.core.add_trace_sink(Box::new(Rc::clone(&csv)));
    sim.run_until(Time::from_secs(2));
    sim.core.flush_trace_sinks().expect("flush");
    drop(sim.core.take_trace_sinks());
    let text = String::from_utf8(
        Rc::try_unwrap(csv).expect("sole owner").into_inner().into_inner(),
    )
    .expect("utf8");
    let ncols = CSV_HEADER.split(',').count();
    let mut lines = text.lines();
    assert_eq!(lines.next(), Some(CSV_HEADER), "header row first");
    let mut rows = 0usize;
    for line in lines {
        assert_eq!(split(line).len(), ncols, "ragged row: {line}");
        rows += 1;
    }
    assert!(rows > 100, "expected a real stream, got {rows} rows");
}
