//! Cross-crate integration tests: do the AQMs actually control the queue
//! when driven by real TCP dynamics?

use pi2::prelude::*;

fn run_aqm(
    aqm: Box<dyn Aqm>,
    rate_bps: u64,
    rtt_ms: i64,
    flows: usize,
    cc: CcKind,
    ecn: EcnSetting,
    secs: u64,
    seed: u64,
) -> pi2::netsim::Monitor {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps,
                buffer_bytes: 40_000 * 1500,
            },
            seed,
            monitor: MonitorConfig {
                warmup: Duration::from_secs(secs as i64 / 4),
                ..MonitorConfig::default()
            },
        },
        aqm,
    );
    for _ in 0..flows {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(rtt_ms)),
            "tcp",
            Time::ZERO,
            move |id| Box::new(TcpSource::new(id, cc, ecn, TcpConfig::default())),
        );
    }
    sim.run_until(Time::from_secs(secs));
    sim.core.monitor.clone()
}

fn mean_sojourn_ms(m: &pi2::netsim::Monitor) -> f64 {
    let s = &m.sojourn_ms;
    assert!(!s.is_empty());
    s.iter().map(|&x| x as f64).sum::<f64>() / s.len() as f64
}

#[test]
fn pi2_holds_reno_queue_near_target() {
    // 10 Mb/s, 100 ms RTT, 5 Reno flows — Figure 11a conditions.
    let m = run_aqm(
        Box::new(Pi2::new(Pi2Config::default())),
        10_000_000,
        100,
        5,
        CcKind::Reno,
        EcnSetting::NotEcn,
        100,
        1,
    );
    let mean = mean_sojourn_ms(&m);
    assert!(
        (5.0..45.0).contains(&mean),
        "PI2 mean queue delay {mean:.1} ms vs 20 ms target"
    );
    // Utilization must not be sacrificed.
    let util_samples = m.util_samples();
    let util: f64 = util_samples.iter().map(|&x| x as f64).sum::<f64>()
        / util_samples.len() as f64;
    assert!(util > 0.85, "utilization {util:.2}");
}

#[test]
fn pie_holds_reno_queue_near_target() {
    let m = run_aqm(
        Box::new(Pie::new(pi2::aqm::PieConfig::paper_default())),
        10_000_000,
        100,
        5,
        CcKind::Reno,
        EcnSetting::NotEcn,
        100,
        1,
    );
    let mean = mean_sojourn_ms(&m);
    assert!(
        (5.0..45.0).contains(&mean),
        "PIE mean queue delay {mean:.1} ms vs 20 ms target"
    );
}

#[test]
fn coupled_pi2_controls_dctcp() {
    let m = run_aqm(
        Box::new(CoupledPi2::new(CoupledPi2Config::default())),
        10_000_000,
        20,
        2,
        CcKind::Dctcp,
        EcnSetting::Scalable,
        60,
        2,
    );
    let mean = mean_sojourn_ms(&m);
    assert!(
        (2.0..45.0).contains(&mean),
        "coupled PI2 mean queue delay {mean:.1} ms"
    );
    // DCTCP must be controlled by marks, not drops.
    let f = &m.flows[0];
    assert!(f.marked > 0, "expected ECN marks");
    assert_eq!(f.dropped, 0, "scalable traffic must not be AQM-dropped");
}

#[test]
fn codel_controls_reno_near_its_target() {
    use pi2::aqm::{Codel, CodelConfig};
    let m = run_aqm(
        Box::new(Codel::new(CodelConfig::default())),
        10_000_000,
        100,
        5,
        CcKind::Reno,
        EcnSetting::NotEcn,
        100,
        4,
    );
    let mean = mean_sojourn_ms(&m);
    // CoDel's 5 ms target with 5 Reno flows at 100 ms RTT sits somewhat
    // above target (its known RTT sensitivity) but far below bufferbloat.
    assert!(
        (1.0..60.0).contains(&mean),
        "CoDel mean queue delay {mean:.1} ms"
    );
    let util_samples = m.util_samples();
    let util: f64 = util_samples.iter().map(|&x| x as f64).sum::<f64>()
        / util_samples.len() as f64;
    assert!(util > 0.75, "utilization {util:.2}");
}

#[test]
fn taildrop_builds_a_standing_queue() {
    // Without an AQM the 60 MB buffer lets Reno build a huge queue —
    // the bufferbloat the paper's AQMs remove.
    let m = run_aqm(
        Box::new(PassAqm),
        10_000_000,
        100,
        5,
        CcKind::Reno,
        EcnSetting::NotEcn,
        60,
        3,
    );
    let mean = mean_sojourn_ms(&m);
    assert!(
        mean > 100.0,
        "tail-drop queue should be far above any AQM target, got {mean:.1} ms"
    );
}
