//! Backend conformance suite: the paper's scenario grid under all three
//! execution backends (`packet`, `fluid`, `hybrid`), certified against
//! the shared `pi2_validate::bands()` tolerance table.
//!
//! The contract under test:
//!
//! * **fluid** — compiling a scenario onto the flow-level engine (no
//!   packet events at all) lands inside the same per-metric bands the
//!   fluid⇄packet differential harness uses: congestion-signal
//!   probability, mean queue delay, utilization, and a rate ratio of
//!   exactly 1 for identical flows;
//! * **hybrid** — moving most of a scenario's population into the fluid
//!   background aggregate must not move the foreground's steady state
//!   outside those bands relative to the all-packet reference;
//! * **identity** — a hybrid run with zero background flows is the
//!   packet run, bit for bit (event trace, metrics registry JSON,
//!   monitor accounts), under the parallel sweep executor at 1, 2 and
//!   4 workers;
//! * **determinism** — hybrid runs are a pure function of the seed,
//!   including the background's granted-rate track.

use pi2::experiments::runner::par_map_threads;
use pi2::experiments::{
    run_fluid, summarize_scenario_run, AqmKind, Backend, BackendSummary, BgGroup, FlowGroup,
    Scenario,
};
use pi2::netsim::JsonlSink;
use pi2::prelude::*;
use pi2::validate::bands;
use std::cell::RefCell;
use std::rc::Rc;

/// One conformance cell: an AQM family × a homogeneous traffic class,
/// at the differential harness's operating point (12 Mb/s, 50 ms RTT,
/// 5 flows, 60 s with a 20 s warm-up).
#[derive(Clone, Copy, Debug)]
struct Cell {
    name: &'static str,
    aqm: fn() -> AqmKind,
    cc: CcKind,
    ecn: EcnSetting,
    /// Judge the pure-fluid backend against the packet reference. Off
    /// for DualPI2: its L queue step-marks at the ~1 ms threshold, which
    /// no PI fluid law reproduces — the packet side settles an order of
    /// magnitude below the Classic target. (Hybrid mode is unaffected:
    /// the background feeds on the real AQM's probed probabilities.)
    fluid: bool,
}

/// The grid covers every fluid-encodable controller family (Squared,
/// Direct, TunedDirect, and both coupled variants) and both window laws.
const GRID: &[Cell] = &[
    Cell {
        name: "pi2-reno",
        aqm: || AqmKind::Pi2(pi2::aqm::Pi2Config::default()),
        cc: CcKind::Reno,
        ecn: EcnSetting::NotEcn,
        fluid: true,
    },
    Cell {
        name: "coupled-scal",
        aqm: || AqmKind::Coupled(pi2::aqm::CoupledPi2Config::default()),
        cc: CcKind::ScalableHalfPkt,
        ecn: EcnSetting::Scalable,
        fluid: true,
    },
    Cell {
        name: "pie-reno",
        aqm: || AqmKind::Pie(pi2::aqm::PieConfig::paper_default()),
        cc: CcKind::Reno,
        ecn: EcnSetting::NotEcn,
        fluid: true,
    },
    Cell {
        name: "dualq-scal",
        aqm: || AqmKind::DualQ(pi2::aqm::DualPi2Config::for_link(RATE)),
        cc: CcKind::ScalableHalfPkt,
        ecn: EcnSetting::Scalable,
        fluid: false,
    },
];

const RATE: u64 = 12_000_000;
const N_FLOWS: usize = 5;
const FG_FLOWS: usize = 2;
const RTT: Duration = Duration::from_millis(50);

/// The all-packet reference scenario: every flow is a real TCP source.
fn packet_scenario(cell: &Cell) -> Scenario {
    let mut sc = Scenario::new((cell.aqm)(), RATE);
    sc.tcp
        .push(FlowGroup::new(N_FLOWS, cell.cc, cell.ecn, "fg", RTT));
    sc.duration = Time::from_secs(60);
    sc.warmup = Duration::from_secs(20);
    sc.seed = 7;
    sc
}

/// The hybrid counterpart: the same population, but only `FG_FLOWS` stay
/// packet-level — the rest ride in the fluid background aggregate.
fn hybrid_scenario(cell: &Cell) -> Scenario {
    let mut sc = packet_scenario(cell);
    sc.tcp[0].count = FG_FLOWS;
    sc.backend = Backend::Hybrid;
    sc.background = vec![BgGroup::new(N_FLOWS - FG_FLOWS, cell.cc, RTT, "bg")];
    sc
}

fn check(cell: &str, backend: &str, metric: &str, got: f64, reference: f64, tol: pi2::validate::Tol) -> Option<String> {
    if tol.ok(reference, got) {
        None
    } else {
        Some(format!(
            "{cell}/{backend}: {metric} {got:.5} vs packet {reference:.5} \
             (band rel {} abs {})",
            tol.rel, tol.abs
        ))
    }
}

/// Judge a backend's summary against the packet reference under the
/// shared validate bands. The fluid side's identical flows make its
/// rate ratio exactly 1, so the packet reference is judged against 1 the
/// same way the differential harness does it.
fn judge(cell: &str, backend: &str, got: &BackendSummary, reference: &BackendSummary) -> Vec<String> {
    let b = bands();
    [
        check(cell, backend, "signal", got.signal, reference.signal, b.signal),
        check(cell, backend, "qdelay_s", got.qdelay_s, reference.qdelay_s, b.qdelay),
        check(cell, backend, "utilization", got.utilization, reference.utilization, b.util),
        check(cell, backend, "rate_ratio", got.rate_ratio, reference.rate_ratio, b.rate_ratio),
    ]
    .into_iter()
    .flatten()
    .collect()
}

/// The conformance headline: every grid cell, all three backends, every
/// metric inside the shared tolerance bands.
#[test]
fn all_backends_agree_inside_the_validate_bands() {
    let failures: Vec<String> = par_map_threads(2, GRID, |cell| {
        let mut fails = Vec::new();

        let psc = packet_scenario(cell);
        let pref = summarize_scenario_run(&psc, &psc.run());

        // Fluid: the whole population on the flow-level engine.
        if cell.fluid {
            let fluid = run_fluid(&psc).expect("grid cells are fluid-encodable");
            fails.extend(judge(cell.name, "fluid", &fluid.summary, &pref));
            assert!(
                (fluid.summary.rate_ratio - 1.0).abs() < 1e-9,
                "{}: identical fluid flows must share exactly (ratio {})",
                cell.name,
                fluid.summary.rate_ratio
            );
        }

        // Hybrid: 2 packet foreground flows + 3 in the fluid background.
        let hsc = hybrid_scenario(cell);
        let hrun = hsc.run();
        let bg = hrun.background.as_ref().expect("hybrid run has background");
        assert_eq!(bg.flow_count, (N_FLOWS - FG_FLOWS) as u64);
        assert!(bg.ticks > 0, "{}: background never ticked", cell.name);
        fails.extend(judge(
            cell.name,
            "hybrid",
            &summarize_scenario_run(&hsc, &hrun),
            &pref,
        ));
        fails
    })
    .into_iter()
    .flatten()
    .collect();
    assert!(
        failures.is_empty(),
        "{} conformance violations:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Everything a packet/hybrid run observably produces, for bit-identity.
fn fingerprint(sc: &Scenario) -> (Vec<u8>, String, Vec<(u64, u64, u64, u64)>, Vec<f32>, Vec<(f64, u64)>) {
    let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    let h = Rc::clone(&sink);
    let run = sc.run_prepared(move |sim| sim.core.add_trace_sink(Box::new(h)));
    let trace = Rc::try_unwrap(sink).expect("sim dropped").into_inner().into_inner();
    let metrics_json = run.metrics.as_ref().expect("scenario runs record metrics").registry().to_json();
    let flows = run
        .monitor
        .flows
        .iter()
        .map(|f| (f.sent_pkts, f.dequeued_bytes, f.marked, f.dropped))
        .collect();
    let bg_series = run.background.map_or(Vec::new(), |b| b.series);
    (trace, metrics_json, flows, run.monitor.sojourn_ms.clone(), bg_series)
}

/// A hybrid scenario with zero background flows must be the packet run,
/// bit for bit — nothing may be attached at all. Three AQM × mix cells,
/// under the parallel executor at 1, 2 and 4 workers.
#[test]
fn zero_background_hybrid_is_bit_identical_to_packet() {
    let cells: Vec<(&Cell, u64)> = vec![(&GRID[0], 101), (&GRID[1], 102), (&GRID[3], 103)];
    for threads in [1usize, 2, 4] {
        let failures: Vec<String> = par_map_threads(threads, &cells, |(cell, seed)| {
            let mut packet = packet_scenario(cell);
            packet.duration = Time::from_secs(6);
            packet.warmup = Duration::from_secs(2);
            packet.seed = *seed;
            let mut hybrid = packet.clone();
            hybrid.backend = Backend::Hybrid;
            hybrid.background = vec![BgGroup::new(0, cell.cc, RTT, "bg")];

            let p = fingerprint(&packet);
            let h = fingerprint(&hybrid);
            if !h.4.is_empty() {
                return Some(format!("{}: empty background left a rate track", cell.name));
            }
            if p.0 != h.0 {
                return Some(format!("{}: traces differ", cell.name));
            }
            if p.1 != h.1 {
                return Some(format!("{}: metrics JSON differs", cell.name));
            }
            if p.2 != h.2 || p.3 != h.3 {
                return Some(format!("{}: monitor accounts differ", cell.name));
            }
            None
        })
        .into_iter()
        .flatten()
        .collect();
        assert!(
            failures.is_empty(),
            "at {threads} workers:\n{}",
            failures.join("\n")
        );
    }
}

/// Hybrid runs are a pure function of the seed: the trace, the metrics
/// registry, and the background's granted-rate track all repeat exactly.
#[test]
fn hybrid_runs_are_seed_deterministic() {
    let make = || {
        let mut sc = hybrid_scenario(&GRID[0]);
        sc.duration = Time::from_secs(8);
        sc.warmup = Duration::from_secs(2);
        sc.seed = 55;
        sc
    };
    let a = fingerprint(&make());
    let b = fingerprint(&make());
    assert!(!a.4.is_empty(), "background must produce a rate track");
    assert_eq!(a.0, b.0, "traces");
    assert_eq!(a.1, b.1, "metrics JSON");
    assert_eq!(a.2, b.2, "flow accounts");
    assert_eq!(a.4, b.4, "background rate track");
    // And the background actually shapes the run: the same foreground
    // without the aggregate sees a different trace.
    let mut solo = make();
    solo.background.clear();
    let c = fingerprint(&solo);
    assert_ne!(a.0, c.0, "the background aggregate must bite");
}
