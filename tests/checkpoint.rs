//! Checkpoint/restore determinism oracle.
//!
//! The contract under test: `Sim::save` at any instant, `Sim::restore`
//! into a freshly built simulator of the same configuration, replay to
//! the end — and every observable (the JSONL event trace, the always-on
//! counters, the monitor's per-flow accounts and sojourn series, the
//! metrics registry snapshot) is *bit-identical* to the run that never
//! stopped. Any hidden state — a field forgotten by a `save_ckpt`, an
//! estimator cycle, a stale timer id, an RNG draw — shows up here as a
//! diverging trace byte.
//!
//! The oracle runs over a grid of AQM × traffic-mix cells covering every
//! policy family in the workspace (single-queue AQMs, the DualPI2 and FQ
//! qdiscs, tail-drop) plus multi-hop chains with finite ("mouse") flows,
//! with the invariant auditor attached, at several snapshot times
//! (mid-warmup, mid-disturbance, and with far-future scheduled events in
//! the wheel's far list), and under the parallel sweep executor at 1, 2
//! and 4 workers.

use pi2::aqm::{
    Codel, CodelConfig, CoupledPi2, CoupledPi2Config, CurvyRed, CurvyRedConfig, DualPi2,
    DualPi2Config, FqConfig, FqDrr, Pi, PiConfig, Pi2, Pi2Config, Pie, PieConfig, Red, RedConfig,
};
use pi2::experiments::runner::par_map_threads;
use pi2::experiments::{AqmKind, BgGroup, FluidBackground};
use pi2::netsim::{AuditSink, JsonlSink, Qdisc};
use pi2::prelude::*;
use pi2::simcore::CkptError;
use std::cell::RefCell;
use std::rc::Rc;

/// One cell of the oracle grid.
#[derive(Clone, Copy, Debug)]
struct Cell {
    aqm: &'static str,
    mix: &'static str,
    seed: u64,
}

/// Every AQM family × a traffic mix its classifier actually exercises.
const GRID: &[Cell] = &[
    Cell { aqm: "pi2", mix: "classic", seed: 11 },
    Cell { aqm: "pi2", mix: "mixed", seed: 12 },
    Cell { aqm: "pie", mix: "classic", seed: 13 },
    Cell { aqm: "pi", mix: "scalable", seed: 14 },
    Cell { aqm: "coupled", mix: "mixed", seed: 15 },
    Cell { aqm: "dualq", mix: "mixed", seed: 16 },
    Cell { aqm: "fq", mix: "mixed", seed: 17 },
    Cell { aqm: "red", mix: "classic", seed: 18 },
    Cell { aqm: "codel", mix: "classic", seed: 19 },
    Cell { aqm: "curvy", mix: "mixed", seed: 20 },
    Cell { aqm: "taildrop", mix: "udp", seed: 21 },
    // Multi-hop + finite flows: the checkpoint must carry every extra
    // hop's qdisc, transmit latch and admission books, the per-hop
    // flow-byte rows, in-flight HopArrive/HopDequeue/HopAqmUpdate
    // events, and a short flow's completion state.
    Cell { aqm: "pi2", mix: "multihop", seed: 22 },
    Cell { aqm: "dualq", mix: "multihop", seed: 23 },
    // Hybrid backend: the checkpoint must carry the fluid background's
    // full state (per-class windows, the engine clock, served-byte and
    // rate-track accounting, the applied grant) or the replayed grants —
    // and with them the foreground's link rate — diverge.
    Cell { aqm: "pi2", mix: "hybrid", seed: 24 },
    Cell { aqm: "dualq", mix: "hybrid", seed: 25 },
];

const RATE: u64 = 10_000_000;
const T_END: Time = Time::from_secs(4);

/// A small two-class fluid background for the hybrid cells.
fn background(aqm: &str) -> FluidBackground {
    let kind = match aqm {
        "pi2" => AqmKind::Pi2(Pi2Config::default()),
        "dualq" => AqmKind::DualQ(DualPi2Config::for_link(RATE)),
        other => panic!("no hybrid cell for {other}"),
    };
    let groups = [
        BgGroup::new(3, CcKind::Reno, Duration::from_millis(40), "bg-reno"),
        BgGroup::new(2, CcKind::Dctcp, Duration::from_millis(40), "bg-dctcp"),
    ];
    FluidBackground::new(&groups, &kind, RATE).expect("PI-family AQMs are fluid-encodable")
}

fn build_sim(cell: &Cell) -> Sim {
    let cfg = SimConfig {
        queue: QueueConfig {
            rate_bps: RATE,
            buffer_bytes: 40_000 * 1500,
        },
        seed: cell.seed,
        monitor: MonitorConfig::default(),
    };
    let mut sim = match cell.aqm {
        "dualq" => Sim::with_qdisc(
            cfg,
            Box::new(DualPi2::new(DualPi2Config::for_link(RATE))) as Box<dyn Qdisc>,
        ),
        "fq" => Sim::with_qdisc(
            cfg,
            Box::new(FqDrr::new(FqConfig::for_link(RATE))) as Box<dyn Qdisc>,
        ),
        name => {
            let aqm: Box<dyn Aqm> = match name {
                "pi2" => Box::new(Pi2::new(Pi2Config::default())),
                "pie" => Box::new(Pie::new(PieConfig::paper_default())),
                "pi" => Box::new(Pi::new(PiConfig::default())),
                "coupled" => Box::new(CoupledPi2::new(CoupledPi2Config::default())),
                "red" => Box::new(Red::new(RedConfig::default())),
                "codel" => Box::new(Codel::new(CodelConfig::default())),
                "curvy" => Box::new(CurvyRed::new(CurvyRedConfig::default())),
                "taildrop" => Box::new(PassAqm),
                other => panic!("unknown AQM {other}"),
            };
            Sim::new(cfg, aqm)
        }
    };
    let rtt = Duration::from_millis(40);
    let tcp = |sim: &mut Sim, label: &str, cc: CcKind, ecn: EcnSetting| {
        sim.add_flow(PathConf::symmetric(rtt), label, Time::ZERO, move |id| {
            Box::new(TcpSource::new(id, cc, ecn, TcpConfig::default()))
        });
    };
    match cell.mix {
        "classic" => {
            tcp(&mut sim, "reno", CcKind::Reno, EcnSetting::NotEcn);
            tcp(&mut sim, "reno", CcKind::Reno, EcnSetting::NotEcn);
            tcp(&mut sim, "cubic", CcKind::Cubic, EcnSetting::NotEcn);
        }
        "scalable" => {
            tcp(&mut sim, "dctcp", CcKind::Dctcp, EcnSetting::Scalable);
            tcp(&mut sim, "dctcp", CcKind::Dctcp, EcnSetting::Scalable);
        }
        "mixed" => {
            tcp(&mut sim, "cubic", CcKind::Cubic, EcnSetting::NotEcn);
            tcp(&mut sim, "ecn-cubic", CcKind::Cubic, EcnSetting::Classic);
            tcp(&mut sim, "dctcp", CcKind::Dctcp, EcnSetting::Scalable);
        }
        "udp" => {
            tcp(&mut sim, "reno", CcKind::Reno, EcnSetting::NotEcn);
            sim.add_flow(PathConf::symmetric(rtt), "udp", Time::ZERO, |id| {
                Box::new(UdpCbrSource::new(id, 6_000_000, 1500, Ecn::NotEct))
            });
            // An on-off burst exercises the timer round-trip through a
            // checkpointed idle period.
            sim.add_flow(PathConf::symmetric(rtt), "burst", Time::ZERO, |id| {
                Box::new(pi2::netsim::OnOffCbrSource::new(
                    id,
                    4_000_000,
                    1000,
                    Duration::from_millis(300),
                    Duration::from_millis(700),
                ))
            });
        }
        "multihop" => {
            // A 3-hop chain: the primary bottleneck plus two PI2-guarded
            // hops (their own AQM update timers live in the event wheel).
            let hop = |rate: u64| -> Box<dyn Qdisc> {
                Box::new(pi2::netsim::BottleneckQueue::new(
                    QueueConfig {
                        rate_bps: rate,
                        buffer_bytes: 40_000 * 1500,
                    },
                    Box::new(Pi2::new(Pi2Config::default())),
                ))
            };
            let h1 = sim.add_hop(hop(RATE), Duration::from_millis(3));
            let h2 = sim.add_hop(hop(RATE / 2), Duration::from_millis(3));
            tcp(&mut sim, "cubic", CcKind::Cubic, EcnSetting::NotEcn);
            tcp(&mut sim, "dctcp", CcKind::Dctcp, EcnSetting::Scalable);
            sim.set_route(FlowId(0), vec![0, h1, h2]);
            sim.set_route(FlowId(1), vec![h1, h2]);
            // A finite "mouse" whose completion state must round-trip:
            // it starts before the late snapshot and finishes in flight.
            let mouse = sim.add_flow(PathConf::symmetric(rtt), "mouse", Time::from_millis(600), |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Cubic,
                    EcnSetting::NotEcn,
                    TcpConfig {
                        data_limit: Some(60),
                        ..TcpConfig::default()
                    },
                ))
            });
            sim.set_route(mouse, vec![0, h1, h2]);
            // Cross traffic entering at the last hop only.
            let cross = sim.add_flow(PathConf::symmetric(rtt), "cross", Time::ZERO, |id| {
                Box::new(UdpCbrSource::new(id, 2_000_000, 1000, Ecn::NotEct))
            });
            sim.set_route(cross, vec![h2]);
        }
        // Same flow set as "mixed", plus the fluid background — so a
        // hybrid blob offered to a "mixed" sim differs ONLY in the
        // background-presence fold of the schema hash.
        "hybrid" => {
            tcp(&mut sim, "cubic", CcKind::Cubic, EcnSetting::NotEcn);
            tcp(&mut sim, "ecn-cubic", CcKind::Cubic, EcnSetting::Classic);
            tcp(&mut sim, "dctcp", CcKind::Dctcp, EcnSetting::Scalable);
            sim.attach_background(Box::new(background(cell.aqm)));
        }
        other => panic!("unknown mix {other}"),
    }
    // Mid-run disturbances: a rate step down and back, an RTT change, and
    // a flow stop/restart — all scheduled up front, so a snapshot taken
    // before they fire must carry them as far-future events.
    sim.set_rate_at(Time::from_millis(1800), RATE / 2);
    sim.set_rate_at(Time::from_millis(2600), RATE);
    sim.set_rtt_at(FlowId(0), Time::from_millis(2200), Duration::from_millis(80));
    sim.stop_flow_at(FlowId(1), Time::from_millis(1900));
    sim.start_flow_at(FlowId(1), Time::from_millis(2800));
    sim
}

/// Attach the full observer set (auditor, metrics, a JSONL sink) to a
/// sim and return the sink handle.
fn observe(sim: &mut Sim, seed: u64) -> Rc<RefCell<JsonlSink<Vec<u8>>>> {
    sim.core.enable_audit(AuditSink::new(seed));
    sim.core.enable_metrics();
    let sink = Rc::new(RefCell::new(JsonlSink::new(Vec::new())));
    sim.core.add_trace_sink(Box::new(Rc::clone(&sink)));
    sink
}

/// Drain a sink handle into its accumulated bytes.
fn trace_bytes(sim: &mut Sim, sink: Rc<RefCell<JsonlSink<Vec<u8>>>>) -> Vec<u8> {
    sim.core.flush_trace_sinks().expect("flush");
    drop(sim.core.take_trace_sinks());
    Rc::try_unwrap(sink).expect("sole owner").into_inner().into_inner()
}

/// The end-of-run observables we require to be bit-identical.
struct Observables {
    trace: Vec<u8>,
    metrics_json: String,
    popped: u64,
    pushed: u64,
    totals: (u64, u64, u64, u64),
    aqm_updates: u64,
    sojourn_ms: Vec<f32>,
    flows: Vec<(u64, u64, u64, u64)>,
    hop_bytes: Vec<Vec<u64>>,
}

fn observables(mut sim: Sim, sink: Rc<RefCell<JsonlSink<Vec<u8>>>>) -> Observables {
    let metrics = sim.core.take_metrics().expect("metrics enabled");
    let t = sim.core.counters.totals();
    Observables {
        trace: trace_bytes(&mut sim, sink),
        metrics_json: metrics.registry().to_json(),
        popped: sim.core.events.popped(),
        pushed: sim.core.events.pushed(),
        totals: (t.enqueued, t.marked, t.dropped, t.dequeued),
        aqm_updates: sim.core.counters.aqm_updates,
        sojourn_ms: sim.core.monitor.sojourn_ms.clone(),
        flows: sim
            .core
            .monitor
            .flows
            .iter()
            .map(|f| (f.sent_pkts, f.dequeued_bytes, f.marked, f.dropped))
            .collect(),
        hop_bytes: (0..sim.core.hop_count() as u32)
            .map(|h| sim.core.hop_flow_bytes(h).to_vec())
            .collect(),
    }
}

/// The oracle for one cell and one snapshot time. Returns a description
/// of the first divergence, or `None` when the restored replay is
/// bit-identical to the straight-through run.
fn oracle(cell: &Cell, snap_at: Time) -> Option<String> {
    let tag = format!("{}×{} @ {snap_at}", cell.aqm, cell.mix);

    // Arm P: run to the snapshot time, save. Its trace is the prefix the
    // restored arm must never re-emit.
    let mut p_sim = build_sim(cell);
    let p_sink = observe(&mut p_sim, cell.seed);
    p_sim.run_until(snap_at);
    // run_until stops on the last event at or before `snap_at`; the
    // restored clock must match the clock at save time, not the nominal
    // snapshot instant.
    let t_save = p_sim.core.now();
    let blob = p_sim.save();
    let prefix = trace_bytes(&mut p_sim, p_sink);

    // Arm F: the straight-through reference.
    let mut f_sim = build_sim(cell);
    let f_sink = observe(&mut f_sim, cell.seed);
    f_sim.run_until(T_END);
    let f_obs = observables(f_sim, f_sink);
    if !f_obs.trace.starts_with(&prefix) {
        return Some(format!("{tag}: reference trace does not extend the prefix"));
    }

    // Arm R: fresh sim, restore, replay. The auditor is attached before
    // restore (it re-baselines); the trace sink only ever sees the suffix.
    let mut r_sim = build_sim(cell);
    let r_sink = observe(&mut r_sim, cell.seed);
    if let Err(e) = r_sim.restore(&blob) {
        return Some(format!("{tag}: restore failed: {e:?}"));
    }
    if r_sim.core.now() != t_save {
        return Some(format!("{tag}: restored clock {} != {t_save}", r_sim.core.now()));
    }
    r_sim.run_until(T_END);
    let r_obs = observables(r_sim, r_sink);

    let suffix = &f_obs.trace[prefix.len()..];
    if r_obs.trace != suffix {
        let n = r_obs
            .trace
            .iter()
            .zip(suffix)
            .take_while(|(a, b)| a == b)
            .count();
        return Some(format!(
            "{tag}: replay trace diverges from the reference at suffix byte {n} \
             (replay {} bytes, reference suffix {} bytes)",
            r_obs.trace.len(),
            suffix.len()
        ));
    }
    if r_obs.metrics_json != f_obs.metrics_json {
        return Some(format!("{tag}: metrics snapshots differ"));
    }
    if (r_obs.popped, r_obs.pushed) != (f_obs.popped, f_obs.pushed) {
        return Some(format!(
            "{tag}: event totals differ: popped/pushed {}/{} vs {}/{}",
            r_obs.popped, r_obs.pushed, f_obs.popped, f_obs.pushed
        ));
    }
    if r_obs.totals != f_obs.totals || r_obs.aqm_updates != f_obs.aqm_updates {
        return Some(format!(
            "{tag}: counters differ: {:?}+{} vs {:?}+{}",
            r_obs.totals, r_obs.aqm_updates, f_obs.totals, f_obs.aqm_updates
        ));
    }
    if r_obs.sojourn_ms != f_obs.sojourn_ms {
        return Some(format!("{tag}: monitor sojourn series differ"));
    }
    if r_obs.flows != f_obs.flows {
        return Some(format!(
            "{tag}: per-flow accounts differ: {:?} vs {:?}",
            r_obs.flows, f_obs.flows
        ));
    }
    if r_obs.hop_bytes != f_obs.hop_bytes {
        return Some(format!(
            "{tag}: per-hop flow-byte rows differ: {:?} vs {:?}",
            r_obs.hop_bytes, f_obs.hop_bytes
        ));
    }
    None
}

/// Snapshot instants: mid-warmup (steady growth), mid-disturbance (the
/// rate step at 1.8 s and the stop/RTT events are in flight — some fired,
/// some still scheduled), and late (past every disturbance).
const SNAPS: &[Time] = &[
    Time::from_millis(700),
    Time::from_millis(2100),
    Time::from_millis(3300),
];

/// The full grid, every snapshot time, under the parallel sweep executor
/// at 1, 2 and 4 workers — the restored replay must be bit-identical to
/// the straight-through run in every cell, regardless of how the cells
/// are scheduled onto workers.
#[test]
fn restore_replay_is_bit_identical_across_the_grid() {
    let mut work: Vec<(Cell, Time)> = Vec::new();
    for cell in GRID {
        for &at in SNAPS {
            work.push((*cell, at));
        }
    }
    for threads in [1usize, 2, 4] {
        let failures: Vec<String> = par_map_threads(threads, &work, |(cell, at)| {
            oracle(cell, *at)
        })
        .into_iter()
        .flatten()
        .collect();
        assert!(
            failures.is_empty(),
            "{} cells diverged at {threads} workers:\n{}",
            failures.len(),
            failures.join("\n")
        );
    }
}

/// Weather (the fault-injection layer) carries its own RNG and stats —
/// both must survive the round trip, or losses replay differently.
#[test]
fn restore_replay_is_bit_identical_with_impairments() {
    let cell = Cell { aqm: "pi2", mix: "classic", seed: 31 };
    let weather = || {
        LinkImpairments::new(97).symmetric(ImpairmentConf {
            loss: 0.02,
            dup: 0.01,
            jitter: Duration::from_millis(2),
        })
    };
    let snap_at = Time::from_millis(2100);

    let mut p_sim = build_sim(&cell);
    p_sim.core.set_impairments(weather());
    let p_sink = observe(&mut p_sim, cell.seed);
    p_sim.run_until(snap_at);
    let blob = p_sim.save();
    let prefix = trace_bytes(&mut p_sim, p_sink);

    let mut f_sim = build_sim(&cell);
    f_sim.core.set_impairments(weather());
    let f_sink = observe(&mut f_sim, cell.seed);
    f_sim.run_until(T_END);
    let f_obs = observables(f_sim, f_sink);
    assert!(f_obs.trace.starts_with(&prefix));

    let mut r_sim = build_sim(&cell);
    r_sim.core.set_impairments(weather());
    let r_sink = observe(&mut r_sim, cell.seed);
    r_sim.restore(&blob).expect("restore");
    r_sim.run_until(T_END);
    let r_obs = observables(r_sim, r_sink);

    assert_eq!(r_obs.trace, &f_obs.trace[prefix.len()..], "impaired replay trace");
    assert_eq!(r_obs.metrics_json, f_obs.metrics_json);
    assert_eq!(r_obs.totals, f_obs.totals);
    assert_eq!(r_obs.flows, f_obs.flows);
}

/// A sim missing the impairment layer must refuse a blob that has one
/// (and vice versa) rather than silently dropping the weather.
#[test]
fn impairment_presence_mismatch_is_rejected() {
    let cell = Cell { aqm: "pi2", mix: "classic", seed: 31 };
    let mut with = build_sim(&cell);
    with.core.set_impairments(LinkImpairments::new(97).symmetric(ImpairmentConf {
        loss: 0.02,
        dup: 0.0,
        jitter: Duration::ZERO,
    }));
    with.run_until(Time::from_millis(500));
    let blob = with.save();

    let mut without = build_sim(&cell);
    match without.restore(&blob) {
        Err(CkptError::Corrupt(msg)) => assert!(msg.contains("impairment"), "{msg}"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// A sim without the hybrid background aggregate must refuse a blob that
/// has one (and vice versa) rather than silently dropping — or
/// fabricating — a background population.
#[test]
fn background_presence_mismatch_is_rejected() {
    let cell = Cell { aqm: "pi2", mix: "hybrid", seed: 71 };
    let mut with = build_sim(&cell);
    with.run_until(Time::from_millis(500));
    let blob = with.save();

    // Identical flow set ("mixed"), no background: the only schema
    // difference is the background-presence fold, and it must reject.
    let mut without = build_sim(&Cell { aqm: "pi2", mix: "mixed", seed: 71 });
    assert!(matches!(
        without.restore(&blob),
        Err(CkptError::SchemaMismatch { .. })
    ));

    // And the pristine round trip still works.
    let mut target = build_sim(&cell);
    target.restore(&blob).expect("hybrid blob restores");
    assert!(target.background().is_some());
}

/// Saving is read-only: saving twice at the same instant yields the same
/// bytes, and a saved run continues exactly like an unsaved one.
#[test]
fn save_is_read_only_and_deterministic() {
    let cell = Cell { aqm: "coupled", mix: "mixed", seed: 41 };
    let mut a = build_sim(&cell);
    a.run_until(Time::from_secs(1));
    let blob1 = a.save();
    let blob2 = a.save();
    assert_eq!(blob1, blob2, "save must be a pure function of the state");
    a.run_until(Time::from_secs(2));

    let mut b = build_sim(&cell);
    b.run_until(Time::from_secs(2));
    assert_eq!(a.core.events.popped(), b.core.events.popped());
    assert_eq!(a.core.counters, b.core.counters);
}

/// Header validation: magic, version and schema hash are each checked
/// before any state is touched.
#[test]
fn header_mismatches_are_rejected_with_the_right_error() {
    let cell = Cell { aqm: "pi2", mix: "classic", seed: 51 };
    let mut sim = build_sim(&cell);
    sim.run_until(Time::from_millis(300));
    let blob = sim.save();

    // Bad magic.
    let mut bad = blob.clone();
    bad[0] ^= 0xff;
    let mut target = build_sim(&cell);
    assert!(matches!(target.restore(&bad), Err(CkptError::BadMagic)));

    // Future version.
    let mut bad = blob.clone();
    bad[8] = bad[8].wrapping_add(1);
    let mut target = build_sim(&cell);
    assert!(matches!(
        target.restore(&bad),
        Err(CkptError::VersionMismatch { .. })
    ));

    // Schema mismatch: a sim with a different flow set.
    let mut other = build_sim(&Cell { aqm: "pi2", mix: "mixed", seed: 51 });
    assert!(matches!(
        other.restore(&blob),
        Err(CkptError::SchemaMismatch { .. })
    ));

    // Trailing garbage.
    let mut bad = blob.clone();
    bad.push(0);
    let mut target = build_sim(&cell);
    assert!(matches!(target.restore(&bad), Err(CkptError::Corrupt(_))));

    // Truncation.
    let bad = &blob[..blob.len() - 3];
    let mut target = build_sim(&cell);
    assert!(matches!(target.restore(bad), Err(CkptError::Truncated)));

    // The pristine blob still restores after all those rejections.
    let mut target = build_sim(&cell);
    target.restore(&blob).expect("pristine blob restores");
    assert_eq!(target.core.now(), Time::from_millis(300));
}

/// Restoring twice from the same blob is idempotent: both replicas
/// replay to identical end states.
#[test]
fn restore_is_idempotent() {
    let cell = Cell { aqm: "dualq", mix: "mixed", seed: 61 };
    let mut sim = build_sim(&cell);
    sim.run_until(Time::from_secs(1));
    let blob = sim.save();

    let run = || {
        let mut r = build_sim(&cell);
        r.restore(&blob).expect("restore");
        r.run_until(Time::from_secs(3));
        (r.core.events.popped(), r.core.counters.clone())
    };
    assert_eq!(run(), run());
}
