//! Integration tests of the paper's headline claims — the shapes that a
//! successful reproduction must show (DESIGN.md §6). Kept short enough to
//! run in the normal test suite; the full-scale versions live in the
//! bench binaries.

use pi2::experiments::grid::{run_cell, Pair};
use pi2::experiments::scenario::AqmKind;
use pi2::fluid::{margins, pie_tune_factor, LoopTf};
use pi2::simcore::Duration;

/// Claim (Figures 15/19): PIE lets DCTCP starve Cubic ~10×; the coupled
/// PI2 keeps the ratio near 1. This is the single most important result.
#[test]
fn coexistence_headline() {
    let pie = run_cell(AqmKind::pie_default(), Pair::CubicVsDctcp, 40, 10, 40, 1);
    let pi2 = run_cell(
        AqmKind::coupled_default(),
        Pair::CubicVsDctcp,
        40,
        10,
        40,
        1,
    );
    assert!(
        pie.rate_ratio < 0.25,
        "PIE should let DCTCP starve Cubic: ratio {:.3}",
        pie.rate_ratio
    );
    assert!(
        (0.4..2.5).contains(&pi2.rate_ratio),
        "coupled PI2 should balance: ratio {:.3}",
        pi2.rate_ratio
    );
    // And the improvement factor is roughly the paper's order of
    // magnitude.
    assert!(
        pi2.rate_ratio / pie.rate_ratio > 5.0,
        "improvement {:.1}x",
        pi2.rate_ratio / pie.rate_ratio
    );
}

/// Claim (Figure 16): both AQMs hold the queue near the 20 ms target when
/// coexisting traffic runs; PI2 no worse than PIE.
#[test]
fn delay_no_worse_than_pie() {
    let pie = run_cell(AqmKind::pie_default(), Pair::CubicVsDctcp, 40, 10, 40, 2);
    let pi2 = run_cell(
        AqmKind::coupled_default(),
        Pair::CubicVsDctcp,
        40,
        10,
        40,
        2,
    );
    assert!(
        (5.0..45.0).contains(&pie.delay.mean),
        "PIE mean {:.1} ms",
        pie.delay.mean
    );
    assert!(
        (5.0..45.0).contains(&pi2.delay.mean),
        "PI2 mean {:.1} ms",
        pi2.delay.mean
    );
    assert!(
        pi2.delay.p99 < 2.0 * pie.delay.p99.max(25.0),
        "PI2 p99 {:.0} vs PIE {:.0}",
        pi2.delay.p99,
        pie.delay.p99
    );
}

/// Claim (Figure 6 / Section 4): with constant gains, the un-squared PI
/// mishandles low loads — "any onset of congestion is immediately
/// suppressed very aggressively (p becomes too high, because β is too
/// high), resulting in underutilization".
///
/// In our idealized substrate the dramatic limit cycle of the paper's
/// testbed does not reappear at Figure 6's exact operating point (the
/// Bode margins at the actual ~30 ms loop RTT are still positive there —
/// see EXPERIMENTS.md); the failure mode emerges at lower p. We pin it
/// there: a single high-BDP Reno flow, where fixed-gain PI crushes the
/// queue far below target and loses utilization relative to PI2.
#[test]
fn fixed_gain_pi_oversuppresses_at_low_p() {
    use pi2::experiments::scenario::{FlowGroup, Scenario};
    use pi2::simcore::Time;
    use pi2::transport::{CcKind, EcnSetting};
    let run = |aqm: AqmKind| {
        let mut sc = Scenario::new(aqm, 200_000_000);
        sc.tcp.push(FlowGroup::new(
            1,
            CcKind::Reno,
            EcnSetting::NotEcn,
            "reno",
            Duration::from_millis(100),
        ));
        sc.duration = Time::from_secs(120);
        sc.warmup = pi2::simcore::Duration::from_secs(40);
        sc.seed = 3;
        let r = sc.run();
        (r.delay_summary().mean, r.util_summary().mean)
    };
    let (pi_delay, pi_util) = run(AqmKind::Pi(pi2::aqm::PiConfig::untuned_pie_gains()));
    let (pi2_delay, pi2_util) = run(AqmKind::pi2_default());
    assert!(
        pi_delay < 3.0,
        "fixed-gain PI should over-suppress (target 20 ms), got {pi_delay:.1} ms"
    );
    assert!(
        pi2_util > pi_util + 3.0,
        "PI2 should keep more of the link: {pi2_util:.0}% vs {pi_util:.0}%"
    );
    let _ = pi2_delay;
}

/// Claim (Figure 5): the implementations of the tune table in the AQM
/// crate and the fluid crate are identical, and both track √(2p).
#[test]
fn tune_tables_agree_across_crates() {
    for i in 0..100 {
        let p = 10f64.powf(-7.0 + 7.0 * i as f64 / 99.0);
        assert_eq!(
            pi2::aqm::pie::tune_factor(p),
            pie_tune_factor(p),
            "divergence at p = {p:e}"
        );
    }
}

/// Claim (Section 4): PI2's ×2.5 gains keep positive margins over the
/// full load range — at ×10 they would not.
#[test]
fn gain_headroom_is_about_2_5x() {
    use pi2::fluid::{LoopKind, PiGains};
    let min_gm = |mult: f64| {
        let mut min = f64::INFINITY;
        for i in 0..30 {
            let pp = 10f64.powf(-3.0 + 3.0 * i as f64 / 29.0);
            let tf = LoopTf {
                kind: LoopKind::RenoOnPSquared,
                gains: PiGains::pie().scaled(mult),
                r0: 0.1,
                p0_prime: pp,
            };
            min = min.min(margins(&tf).gain_margin_db);
        }
        min
    };
    assert!(min_gm(2.5) > 0.0, "paper's 2.5x must be safe");
    assert!(min_gm(10.0) < 0.0, "10x should blow the margin");
}

/// Determinism across the whole stack: one full experiment twice with the
/// same seed gives bit-identical aggregate results.
#[test]
fn experiments_are_deterministic() {
    let a = run_cell(AqmKind::coupled_default(), Pair::CubicVsDctcp, 12, 20, 20, 77);
    let b = run_cell(AqmKind::coupled_default(), Pair::CubicVsDctcp, 12, 20, 20, 77);
    assert_eq!(a.tputs.0, b.tputs.0);
    assert_eq!(a.tputs.1, b.tputs.1);
    assert_eq!(a.delay.n, b.delay.n);
    assert_eq!(a.delay.p99, b.delay.p99);
}

/// ... and a different seed actually changes the realization.
#[test]
fn different_seeds_differ() {
    let a = run_cell(AqmKind::coupled_default(), Pair::CubicVsDctcp, 12, 20, 20, 77);
    let b = run_cell(AqmKind::coupled_default(), Pair::CubicVsDctcp, 12, 20, 20, 78);
    assert_ne!(
        (a.tputs.0, a.delay.p99),
        (b.tputs.0, b.delay.p99),
        "seeds should decorrelate runs"
    );
}
