//! Live-observability integration tests: the HTTP exposition server is a
//! pure observer with a schema-stable /metrics body under concurrent
//! scrapes, and the Perfetto timeline exporter round-trips the golden
//! parking-lot scenario through the workspace's own structural validator
//! without perturbing the run.

use pi2::netsim::{PerfettoSink, TraceEvent, TraceSink};
use pi2::obs::{http_get, Histogram, ObsServer};
use pi2::prelude::*;
use pi2_bench::perfetto_check::check_perfetto;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Batched quantiles must agree with single calls, stay ordered, merge
/// commutatively, and degrade to zero on an empty histogram.
#[test]
fn histogram_quantiles_batch_merge_and_empty_cases() {
    let empty = Histogram::new();
    assert_eq!(empty.quantiles([0.0, 0.5, 1.0]), [0, 0, 0]);

    let mut low = Histogram::new();
    let mut high = Histogram::new();
    for v in 1..=500u64 {
        low.record(v);
        high.record(v + 10_000);
    }
    let [p25, p50, p75, p99] = low.quantiles([0.25, 0.5, 0.75, 0.99]);
    assert_eq!(p25, low.quantile(0.25));
    assert_eq!(p50, low.quantile(0.5));
    assert_eq!(p75, low.quantile(0.75));
    assert_eq!(p99, low.quantile(0.99));
    assert!(p25 <= p50 && p50 <= p75 && p75 <= p99, "quantiles ordered");

    // Merging the high half shifts the median into the upper range, and
    // a merge in either direction yields the same quantiles.
    let mut ab = low.clone();
    ab.merge(&high);
    let mut ba = high.clone();
    ba.merge(&low);
    assert_eq!(ab.quantiles([0.5, 0.9]), ba.quantiles([0.5, 0.9]));
    assert_eq!(ab.count(), 1000);
    assert!(ab.quantile(0.75) > 10_000, "upper quartile is in the high half");
    assert!(ab.quantile(0.25) <= 500, "lower quartile is in the low half");
}

fn small_metered_run(seed: u64) -> pi2::netsim::SimMetrics {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 5_000_000,
                buffer_bytes: 40_000 * 1500,
            },
            seed,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    sim.core.enable_metrics();
    sim.add_flow(
        PathConf::symmetric(Duration::from_millis(20)),
        "reno",
        Time::ZERO,
        |id| {
            Box::new(TcpSource::new(
                id,
                CcKind::Reno,
                EcnSetting::NotEcn,
                TcpConfig::default(),
            ))
        },
    );
    sim.run_until(Time::from_secs(1));
    *sim.core.take_metrics().expect("metrics enabled")
}

/// The metric-name set of a /metrics scrape: every non-comment sample
/// line's name token.
fn name_set(body: &str) -> Vec<String> {
    let mut names: Vec<String> = body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.trim().is_empty())
        .map(|l| l.split_whitespace().next().unwrap_or("").to_string())
        .collect();
    names.sort();
    names.dedup();
    names
}

/// Scrapes racing a publisher that keeps folding new cells into the
/// snapshot must always see a complete, lint-clean body with the same
/// metric-name schema — never a torn or shrinking one.
#[test]
fn concurrent_scrapes_see_a_stable_schema() {
    let srv = Arc::new(ObsServer::bind("127.0.0.1:0").expect("bind"));
    let addr = srv.addr();

    // Seed the snapshot with one real cell so early scrapes see the
    // full schema, then keep republishing merged snapshots.
    let mut merged = small_metered_run(1);
    srv.publish_metrics(merged.registry().to_prometheus());
    let want_names = name_set(&merged.registry().to_prometheus());
    assert!(!want_names.is_empty());

    let stop = Arc::new(AtomicBool::new(false));
    let publisher = {
        let srv = Arc::clone(&srv);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seed = 2u64;
            while !stop.load(Ordering::Relaxed) {
                merged.merge(&small_metered_run(seed));
                srv.publish_metrics(merged.registry().to_prometheus());
                seed += 1;
            }
            seed
        })
    };

    let scrapers: Vec<_> = (0..4)
        .map(|_| {
            let want = want_names.clone();
            std::thread::spawn(move || {
                let mut seen = 0usize;
                for _ in 0..25 {
                    let (status, body) = http_get(addr, "/metrics").expect("scrape");
                    assert!(status.contains("200"), "{status}");
                    pi2::obs::prom_lint(&body).expect("every scrape lints clean");
                    assert_eq!(name_set(&body), want, "schema drifted mid-sweep");
                    seen += 1;
                }
                seen
            })
        })
        .collect();
    for s in scrapers {
        assert_eq!(s.join().expect("scraper"), 25);
    }
    stop.store(true, Ordering::Relaxed);
    let _ = publisher.join().expect("publisher");

    // /progress and /healthz answer alongside the scrape storm.
    srv.publish_progress("{\"cells_done\":3,\"cells_total\":4}\n".to_string());
    let (st, body) = http_get(addr, "/progress").expect("progress");
    assert!(st.contains("200") && body.contains("cells_done"));
    let (st, body) = http_get(addr, "/healthz").expect("healthz");
    assert!(st.contains("200") && body.contains("ok"));
}

/// Counts every drop/mark the sim reports on any hop — the independent
/// tally the Perfetto instants must match.
#[derive(Default)]
struct AllHopCounts {
    drops: u64,
    marks: u64,
    enqueues: u64,
    dequeues: u64,
}

impl TraceSink for AllHopCounts {
    fn on_event(&mut self, ev: &TraceEvent) {
        self.on_hop_event(0, ev);
    }
    fn on_hop_event(&mut self, _hop: u32, ev: &TraceEvent) {
        match ev {
            TraceEvent::Drop { .. } => self.drops += 1,
            TraceEvent::Mark { .. } => self.marks += 1,
            TraceEvent::Enqueue { .. } => self.enqueues += 1,
            TraceEvent::Dequeue { .. } => self.dequeues += 1,
        }
    }
}

/// The golden parking-lot scenario (same construction as the JSONL
/// golden in `trace_streaming.rs`), with trace sinks attached via
/// `prepare`. Run for 1.5 s rather than the golden's 300 ms: the 500
/// kb/s hop sheds its 300 kb/s excess into a 30 kB buffer, so the
/// longer horizon guarantees overflow drops for the instant-event
/// cross-check. Returns the finished sim.
fn parking_lot_run(prepare: impl FnOnce(&mut Sim)) -> Sim {
    let fifo_hop = |rate_bps: u64| -> Box<dyn pi2::netsim::Qdisc> {
        Box::new(pi2::netsim::BottleneckQueue::new(
            QueueConfig {
                rate_bps,
                buffer_bytes: 20 * 1500,
            },
            Box::new(PassAqm),
        ))
    };
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 1_000_000,
                buffer_bytes: 20 * 1500,
            },
            seed: 11,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    let h1 = sim.add_hop(fifo_hop(1_000_000), Duration::from_millis(2));
    let h2 = sim.add_hop(fifo_hop(500_000), Duration::from_millis(2));
    prepare(&mut sim);
    let e2e = sim.add_flow(
        PathConf::symmetric(Duration::from_millis(20)),
        "e2e",
        Time::ZERO,
        |id| Box::new(pi2::netsim::UdpCbrSource::new(id, 600_000, 1000, Ecn::NotEct)),
    );
    sim.set_route(e2e, vec![0, h1, h2]);
    for hop in [h1, h2] {
        let cross = sim.add_flow(
            PathConf::symmetric(Duration::from_millis(10)),
            "cross",
            Time::ZERO,
            |id| Box::new(pi2::netsim::UdpCbrSource::new(id, 200_000, 500, Ecn::NotEct)),
        );
        sim.set_route(cross, vec![hop]);
    }
    sim.run_until(Time::from_millis(1500));
    sim
}

/// The Perfetto export of the golden parking-lot scenario round-trips
/// through the structural validator (valid JSON, per-track monotonic
/// timestamps), its drop instants match an independent all-hop tally,
/// and attaching the exporter does not perturb the run.
#[test]
fn perfetto_export_of_golden_parking_lot_round_trips() {
    let plain = parking_lot_run(|_| {});

    let sink = Rc::new(RefCell::new(PerfettoSink::new(Vec::new())));
    let counts = Rc::new(RefCell::new(AllHopCounts::default()));
    let (s, c) = (Rc::clone(&sink), Rc::clone(&counts));
    let mut traced = parking_lot_run(move |sim| {
        sim.core.add_trace_sink(Box::new(s));
        sim.core.add_trace_sink(Box::new(c));
    });
    traced.core.flush_trace_sinks().expect("flush finalizes");
    drop(traced.core.take_trace_sinks());

    // Pure observer: the traced run is the same run.
    assert_eq!(plain.core.events.popped(), traced.core.events.popped());
    assert_eq!(plain.core.counters, traced.core.counters);
    for h in 0..plain.core.hop_count() as u32 {
        assert_eq!(plain.core.hop_flow_bytes(h), traced.core.hop_flow_bytes(h));
    }

    let Ok(sink) = Rc::try_unwrap(sink) else {
        panic!("sole owner of the perfetto sink");
    };
    let body = String::from_utf8(sink.into_inner().into_inner()).expect("utf8");
    let report = check_perfetto(&body).expect("timeline validates");
    let counts = counts.borrow();
    assert!(counts.drops > 0, "the 500 kb/s hop must shed load");
    assert_eq!(report.drops, counts.drops as usize, "every drop is an instant");
    assert_eq!(report.marks, counts.marks as usize, "every mark is an instant");
    assert!(
        report.counters as u64 >= counts.enqueues + counts.dequeues,
        "depth counters cover every enqueue and dequeue"
    );
    // Three hop processes plus the flow process, each with tracks.
    assert!(report.tracks >= 4, "got {} tracks", report.tracks);
    assert_eq!(report.slices, 3, "one lifetime slice per flow");
}
