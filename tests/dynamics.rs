//! Packet-level step-response dynamics (paper §5): after a disturbance,
//! the PI2 controller must bring queue delay back into the target band,
//! and no slower than PIE — including when the path itself is degraded
//! by the fault-injection "network weather" layer.

use pi2::experiments::dynamics::{
    run_one, Disturbance, BAND_MS, HOLD_S, STEP_DOWN_S, STEP_UP_S, TARGET_MS,
};
use pi2::experiments::scenario::{AqmKind, FlowGroup, Scenario};
use pi2::prelude::*;
use pi2::transport::{CcKind, EcnSetting};

/// After the 4× link-rate drop (40 → 10 Mb/s), PI2's queue delay spikes
/// out of band and then re-settles into target ± tolerance.
#[test]
fn pi2_resettles_into_target_band_after_capacity_drop() {
    let r = run_one(AqmKind::pi2_default(), Disturbance::RateStep, None, 12);
    assert!(
        r.spike_ms > TARGET_MS + BAND_MS,
        "the drop must push delay out of band, got {:.1} ms",
        r.spike_ms
    );
    let settle = r
        .settle_s
        .expect("PI2 must re-settle within the low-rate window");
    assert!(
        settle + HOLD_S <= (STEP_UP_S - STEP_DOWN_S) as f64,
        "settled (and held) only after {settle:.1} s"
    );
    // Once settled, it stays put: the tail of the low-rate window sits
    // inside the band.
    let tail: Vec<f64> = r
        .qdelay
        .iter()
        .filter(|(t, _)| (STEP_UP_S as f64 - 10.0..STEP_UP_S as f64).contains(t))
        .map(|&(_, v)| v)
        .collect();
    let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
    assert!(
        (mean - TARGET_MS).abs() <= BAND_MS,
        "tail mean {mean:.1} ms escaped target ± band"
    );
}

/// The paper's §5 comparison: PI2's settling time is no worse than
/// PIE's, for both disturbance kinds.
#[test]
fn pi2_settles_no_slower_than_pie() {
    for d in [Disturbance::RateStep, Disturbance::FlowChurn] {
        let pie = run_one(AqmKind::pie_default(), d, None, 12);
        let pi2 = run_one(AqmKind::pi2_default(), d, None, 12);
        let (ps, qs) = (
            pie.settle_s.expect("PIE settles on a clean path"),
            pi2.settle_s.expect("PI2 settles on a clean path"),
        );
        assert!(
            qs <= ps,
            "{}: PI2 settled in {qs:.1} s, PIE in {ps:.1} s",
            d.name()
        );
    }
}

/// The dynamics claims survive weather: with 1 % random loss and enough
/// jitter to reorder, PI2 still re-settles after the capacity drop.
#[test]
fn pi2_resettles_under_loss_and_reordering() {
    let weather = LinkImpairments::new(0x5701_11).symmetric(ImpairmentConf {
        loss: 0.01,
        dup: 0.001,
        jitter: Duration::from_millis(2),
    });
    let r = run_one(
        AqmKind::pi2_default(),
        Disturbance::RateStep,
        Some(weather),
        12,
    );
    let s = r.impair.expect("weather accounting present");
    assert!(s.fwd_lost > 0 && s.rev_lost > 0, "loss applied: {s:?}");
    assert!(
        r.settle_s.is_some(),
        "PI2 must absorb the drop even on a degraded path"
    );
}

/// DCTCP/Cubic coexistence under the coupled AQM holds its throughput-
/// ratio band when the path runs 1 % random loss with reordering jitter
/// in both directions.
#[test]
fn coexistence_ratio_band_survives_weather() {
    let mut sc = Scenario::new(AqmKind::coupled_default(), 40_000_000);
    let rtt = Duration::from_millis(10);
    sc.tcp.push(FlowGroup::new(
        1,
        CcKind::Cubic,
        EcnSetting::NotEcn,
        "cubic",
        rtt,
    ));
    sc.tcp.push(FlowGroup::new(
        1,
        CcKind::Dctcp,
        EcnSetting::Scalable,
        "dctcp",
        rtt,
    ));
    sc.duration = Time::from_secs(40);
    sc.warmup = Duration::from_secs(10);
    sc.seed = 21;
    sc.impairments = Some(LinkImpairments::new(0xC0E1).symmetric(ImpairmentConf {
        loss: 0.01,
        dup: 0.0,
        jitter: Duration::from_millis(2),
    }));
    let r = sc.run();
    let s = r.impair.expect("weather accounting present");
    assert!(s.fwd_lost > 0, "forward loss applied: {s:?}");
    let (c, d) = (r.per_flow_tput_mbps("cubic"), r.per_flow_tput_mbps("dctcp"));
    let ratio = c / d;
    assert!(
        (0.25..=4.0).contains(&ratio),
        "coexistence band broken under weather: cubic {c:.1} / dctcp {d:.1} = {ratio:.2}"
    );
    // The link still does useful work despite the weather.
    assert!(c + d > 20.0, "total {:.1} Mb/s under 1 % loss", c + d);
}
