//! Observability integration tests: the metrics registry and the
//! event-loop profiler are pure observers (a metered run is bit-identical
//! to a bare one), per-worker registries merge deterministically for any
//! thread count, exports pass their own lints, and an invariant
//! violation dumps the flight recorder next to the replay seed.

use pi2::netsim::aqm::QueueSnapshot;
use pi2::netsim::AuditSink;
use pi2::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn build_sim(seed: u64) -> Sim {
    let mut sim = Sim::new(
        SimConfig {
            queue: QueueConfig {
                rate_bps: 10_000_000,
                buffer_bytes: 40_000 * 1500,
            },
            seed,
            monitor: MonitorConfig::default(),
        },
        Box::new(Pi2::new(Pi2Config::default())),
    );
    for _ in 0..2 {
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "reno",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            },
        );
    }
    sim
}

/// The registry never touches the RNG, the queue, or the event heap, so
/// a metrics-on run and a metrics-off run of the same seed are the same
/// run — and the registry's counters must agree with the independent
/// counting sink.
#[test]
fn metrics_do_not_perturb_the_simulation() {
    let mut plain = build_sim(3);
    plain.run_until(Time::from_secs(5));

    let mut metered = build_sim(3);
    metered.core.enable_metrics();
    metered.run_until(Time::from_secs(5));

    assert_eq!(plain.core.events.popped(), metered.core.events.popped());
    assert_eq!(plain.core.counters, metered.core.counters);
    assert_eq!(plain.core.monitor.sojourn_ms, metered.core.monitor.sojourn_ms);
    for (a, b) in plain
        .core
        .monitor
        .flows
        .iter()
        .zip(&metered.core.monitor.flows)
    {
        assert_eq!(a.dequeued_bytes, b.dequeued_bytes);
        assert_eq!(a.dropped, b.dropped);
        assert_eq!(a.marked, b.marked);
    }

    let t = metered.core.counters.totals();
    let m = metered.core.take_metrics().expect("metrics were enabled");
    assert_eq!(m.enqueued(), t.enqueued);
    assert_eq!(m.marked(), t.marked);
    assert_eq!(m.dropped(), t.dropped);
    assert_eq!(m.dequeued(), t.dequeued);
    assert_eq!(m.aqm_updates(), metered.core.counters.aqm_updates);
    assert_eq!(m.events_processed(), metered.core.events.popped());
    assert_eq!(m.sojourn().count(), t.dequeued, "one sojourn sample per departure");
}

/// The self-profiler reads the wall clock but never writes simulation
/// state: a profiled run is bit-identical too, and its per-class event
/// counts sum to the dispatch loop's total.
#[test]
fn profiler_does_not_perturb_the_simulation() {
    let mut plain = build_sim(4);
    plain.run_until(Time::from_secs(5));

    let mut profiled = build_sim(4);
    profiled.enable_profiler();
    profiled.run_until(Time::from_secs(5));

    assert_eq!(plain.core.events.popped(), profiled.core.events.popped());
    assert_eq!(plain.core.counters, profiled.core.counters);
    assert_eq!(plain.core.monitor.sojourn_ms, profiled.core.monitor.sojourn_ms);

    let prof = profiled.take_profiler().expect("profiler was enabled");
    assert_eq!(prof.total_events(), profiled.core.events.popped());
    assert!(!prof.rows().is_empty());
    assert!(prof.render_table().contains("dequeue"));
}

/// A real run's exports pass their own validation: the Prometheus text
/// lints clean and the JSON snapshot carries the registry schema.
#[test]
fn exports_from_a_real_run_validate() {
    let mut sim = build_sim(5);
    sim.core.enable_metrics();
    sim.run_until(Time::from_secs(5));
    let m = sim.core.take_metrics().expect("metrics were enabled");

    let prom = m.registry().to_prometheus();
    let samples = pi2::obs::prom_lint(&prom).expect("exposition text lints clean");
    assert!(samples >= 10, "expected a full metric set, got {samples} samples");

    let json = m.registry().to_json();
    assert!(json.starts_with("{\"schema\":1,"));
    assert!(json.contains("\"pi2_enqueued_total\""));
    assert!(json.contains("\"pi2_sojourn_ns\""));
}

/// Per-worker registries merged in item order are byte-identical for any
/// thread count — the sweep-level analogue of the runner's determinism
/// guarantee, exercised through the public experiments API.
#[test]
fn merged_snapshot_identical_across_thread_counts() {
    use pi2::experiments::runner::{merged_metrics, run_all_threads};
    use pi2::experiments::scenario::{AqmKind, FlowGroup, Scenario};
    let scenarios: Vec<Scenario> = (0..3)
        .map(|i| {
            let mut sc = Scenario::new(AqmKind::pi2_default(), 4_000_000);
            sc.tcp.push(FlowGroup::new(
                1,
                CcKind::Reno,
                EcnSetting::NotEcn,
                "reno",
                Duration::from_millis(20),
            ));
            sc.duration = Time::from_secs(3);
            sc.warmup = Duration::from_secs(1);
            sc.seed = 700 + i;
            sc
        })
        .collect();
    let snapshot = |threads: usize| {
        let results = run_all_threads(threads, &scenarios);
        merged_metrics(&results)
            .expect("scenario runs carry metrics")
            .registry()
            .to_json()
    };
    let serial = snapshot(1);
    assert_eq!(serial, snapshot(2));
    assert_eq!(serial, snapshot(4));
}

/// An AQM that reports an out-of-range drop probability after admitting
/// some traffic — enough history for the flight recorder to be worth
/// dumping when the auditor trips over it.
struct BrokenAqm {
    decisions: u64,
}

impl Aqm for BrokenAqm {
    fn on_enqueue(
        &mut self,
        _pkt: &Packet,
        _snap: &QueueSnapshot,
        _now: Time,
        _rng: &mut pi2::simcore::Rng,
    ) -> Decision {
        self.decisions += 1;
        if self.decisions > 50 {
            // Probability 1.5 violates the auditor's [0, 1] bound.
            Decision::drop(1.5)
        } else {
            Decision::pass(0.0)
        }
    }
    fn name(&self) -> &'static str {
        "broken"
    }
}

/// The acceptance scenario for the flight recorder: a deliberately broken
/// AQM trips the auditor, the panic names the dump file, and that file
/// holds the recent trace window as JSONL plus a closing violation record
/// with the replay seed.
#[test]
fn broken_aqm_violation_dumps_the_flight_recorder() {
    // Unique seed → unique default dump path (no env mutation, which
    // would race parallel tests).
    let seed = 0xB20_CE41_u64;
    let dump = std::env::temp_dir().join(format!("pi2_flight_seed{seed}.jsonl"));
    let _ = std::fs::remove_file(&dump);

    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut sim = Sim::new(
            SimConfig {
                queue: QueueConfig {
                    rate_bps: 10_000_000,
                    buffer_bytes: 40_000 * 1500,
                },
                seed,
                monitor: MonitorConfig::default(),
            },
            Box::new(BrokenAqm { decisions: 0 }),
        );
        sim.core.enable_audit(AuditSink::new(seed).with_label("broken"));
        sim.add_flow(
            PathConf::symmetric(Duration::from_millis(20)),
            "reno",
            Time::ZERO,
            |id| {
                Box::new(TcpSource::new(
                    id,
                    CcKind::Reno,
                    EcnSetting::NotEcn,
                    TcpConfig::default(),
                ))
            },
        );
        sim.run_until(Time::from_secs(10));
    }));
    let err = result.expect_err("the auditor must panic on prob 1.5");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("drop probability"), "unexpected panic: {msg}");
    assert!(msg.contains("flight recorder"), "panic must name the dump: {msg}");

    let body = std::fs::read_to_string(&dump).expect("flight-recorder dump exists");
    let lines: Vec<&str> = body.lines().collect();
    assert!(lines.len() >= 2, "dump holds the event window: {body}");
    for line in &lines[..lines.len() - 1] {
        assert!(line.starts_with("{\"ev\":"), "not a trace line: {line}");
    }
    let last = lines.last().unwrap();
    assert!(last.contains("\"ev\":\"violation\""), "missing closing record: {last}");
    assert!(last.contains(&format!("\"seed\":{seed}")), "missing seed: {last}");
    let _ = std::fs::remove_file(&dump);
}
